// Package engine is the query-serving layer over the SimSub algorithms: a
// sharded in-memory trajectory store whose shards each carry their own
// pruning index, searched concurrently through a bounded worker pool with
// context-based cancellation, an LRU cache of top-k answers, and a batched
// top-k that merges the per-shard result heaps into one global ranking.
//
// The engine lifts the single-database search of internal/core to a
// concurrent service: trajectories are distributed round-robin over shards
// by global ID, each top-k query fans out one bounded task per shard
// (core's cancellable heap-based TopKCtx), and the per-shard ascending
// lists are k-way merged. Package server exposes it over HTTP.
package engine

import (
	"container/heap"
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"slices"

	"simsub/api"
	"simsub/internal/ann"
	"simsub/internal/core"
	"simsub/internal/failpoint"
	"simsub/internal/geo"
	"simsub/internal/sim"
	"simsub/internal/storage"
	"simsub/internal/traj"
)

// IndexKind selects the per-shard pruning structure. The zero value is the
// R-tree, so a zero Config gets MBR pruning.
type IndexKind int

// Per-shard index kinds.
const (
	RTree IndexKind = iota
	Grid
	ScanAll
)

func (k IndexKind) coreKind() core.IndexKind {
	switch k {
	case Grid:
		return core.GridFileIndex
	case ScanAll:
		return core.NoIndex
	default:
		return core.RTreeIndex
	}
}

// Config sizes an Engine. Zero values select the documented defaults.
type Config struct {
	// Shards is the number of store shards (default 4). More shards mean
	// more intra-query parallelism and cheaper per-batch index rebuilds.
	Shards int
	// Workers bounds the number of concurrently executing per-shard search
	// tasks across all in-flight queries (default GOMAXPROCS).
	Workers int
	// CacheSize is the LRU result-cache capacity in entries; 0 disables
	// caching.
	CacheSize int
	// Index is the per-shard pruning structure (default RTree).
	Index IndexKind
	// QualitySample is the fraction of uncached learned-search (RLS /
	// RLS-Skip) queries whose ranking is re-scored against the exact
	// ranking to feed the approximation-ratio / mean-rank / skipped-
	// fraction serving metrics (see Stats). 0 disables sampling; each
	// sample costs one ExactS scan over the query's candidates.
	QualitySample float64
	// RecallSample is the fraction of uncached ANN-prefiltered queries
	// whose ranking is re-scored against the same search over the
	// exhaustive candidate set to feed the recall@k serving metric (see
	// Stats.MeanRecall). 0 disables sampling; each sample costs one full
	// unprefiltered scan.
	RecallSample float64
	// BatchLanes is the lockstep width of batched per-shard scans for
	// algorithms with a batched path (the learned searches): each shard
	// worker feeds candidates into this many lanes and advances them with
	// one batched policy inference per round (default 64). 1 forces the
	// sequential scan; rankings are byte-identical either way.
	BatchLanes int
	// QuerySlots bounds concurrently admitted queries (default Workers).
	// Queries beyond it wait in the admission queue; see admission.go.
	QuerySlots int
	// QueueLimit bounds queries waiting for admission (default
	// 8×QuerySlots with a floor of 64, so a small-core box still absorbs
	// ordinary bursts). A full queue rejects every class with overloaded.
	QueueLimit int
	// QueueTarget is the CoDel target queue wait (default 5ms): when the
	// minimum observed wait stays above it for a whole QueueInterval, the
	// admitter starts shedding expensive-class queries.
	QueueTarget time.Duration
	// QueueInterval is the CoDel control interval (default 100ms).
	QueueInterval time.Duration
	// MergeReserve is the slice of a request's deadline budget held back
	// for merging and serialization (default 10ms): a query whose
	// predicted scan time exceeds the remaining budget minus this reserve
	// is rejected early with deadline_exceeded.
	MergeReserve time.Duration
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.BatchLanes <= 0 {
		c.BatchLanes = 64
	}
	if c.QuerySlots <= 0 {
		c.QuerySlots = c.Workers
	}
	if c.QueueLimit <= 0 {
		if c.QueueLimit = 8 * c.QuerySlots; c.QueueLimit < 64 {
			c.QueueLimit = 64
		}
	}
	if c.QueueTarget <= 0 {
		c.QueueTarget = 5 * time.Millisecond
	}
	if c.QueueInterval <= 0 {
		c.QueueInterval = 100 * time.Millisecond
	}
	if c.MergeReserve <= 0 {
		c.MergeReserve = 10 * time.Millisecond
	}
}

// Params carries per-query overrides for parameterized measures and
// algorithms. The zero value means "use the registered defaults". Setting
// a parameter whose measure/algorithm is not selected is an
// invalid_argument error rather than a silent no-op.
type Params struct {
	// EDREps overrides EDR's matching tolerance (measure "edr").
	EDREps float64
	// LCSSEps overrides LCSS's matching tolerance (measure "lcss").
	LCSSEps float64
	// CDTWBand overrides CDTW's relative Sakoe-Chiba band in (0, 1]
	// (measure "cdtw").
	CDTWBand float64
	// POSDelay overrides POS-D's split delay (algorithm "pos-d").
	POSDelay int
}

// Query is one top-k request against the engine's store: the full query
// spec of the v2 API. Q, K, Measure and Algorithm are required (see
// ResolveQuery for names); the remaining fields refine the search.
type Query struct {
	// Q is the query trajectory.
	Q traj.Trajectory
	// K is the ranking size: positive and no larger than the store.
	K int
	// Measure names a registered similarity measure ("dtw", "frechet", ...).
	Measure string
	// Algorithm names a search algorithm accepted by core.AlgorithmFor
	// ("exacts", "pss", "pos", ...).
	Algorithm string
	// Params overrides parameterized measure/algorithm defaults.
	Params Params
	// Bound, when non-nil, is a trusted upper bound on the final k-th-best
	// distance: the engine seeds its shared best-so-far threshold from it,
	// so candidates provably farther than the bound are pruned before the
	// local ranking fills. Pruning stays strict, so matches at exactly the
	// bound survive, but matches strictly beyond it may be omitted from
	// the ranking — callers (the distributed router propagating its
	// running global k-th-best over the wire) must only pass bounds that
	// make such matches irrelevant. Must be finite and non-negative.
	Bound *float64
	// Filter, when non-nil, restricts the search to trajectories whose MBR
	// intersects it. The restriction is pushed down to each shard's
	// pruning index, composing with the similarity pruning.
	Filter *geo.Rect
	// AllowDegraded opts this query into graceful degradation: under
	// overload or an insufficient deadline budget the engine may substitute
	// a cheaper search (ExactS/SizeS → PSS → the compiled RLS-Skip policy)
	// instead of rejecting, and marks the answer's Degraded field. Without
	// the opt-in the engine NEVER silently changes what a ranking means.
	AllowDegraded bool
	// ANN, when non-nil, swaps candidate generation from the exhaustive
	// spatial enumeration to the approximate embedding prefilter: each
	// shard's LSH index proposes its share of the candidate budget by
	// embedding distance and the exact algorithm reranks only those.
	// Retained matches carry distances byte-identical to scoring the same
	// candidates without the prefilter; the only approximation is that a
	// true top-k member absent from the candidate set is missed (the
	// sampled recall telemetry tracks how often — see Config.RecallSample).
	// Requires a registered encoder (SetEncoder).
	ANN *ANNParams
	// Distinct collapses matches whose matched subtrajectories carry
	// identical points (duplicate loads of the same data), keeping the
	// best-ranked representative; the ranking may then hold fewer than K
	// matches.
	Distinct bool
	// Offset skips the first Offset matches of the ranking.
	Offset int
	// Limit caps the returned page size (0 = to the end of the ranking).
	Limit int
}

// ANNParams tunes the approximate candidate prefilter of Query.ANN.
type ANNParams struct {
	// Candidates is the total candidate budget across all shards: the
	// prefilter proposes (about) this many trajectories for exact
	// reranking. Larger budgets raise recall and cost.
	Candidates int
	// Probes is the multi-probe width per LSH table: 1 visits only each
	// table's home bucket, higher values add the nearest perturbed
	// buckets. Larger values raise recall at slightly higher index cost.
	Probes int
}

// Match is one ranked answer: the matched subtrajectory identified by the
// engine-assigned trajectory ID.
type Match struct {
	// TrajID is the global ID the engine assigned at load time.
	TrajID int
	// Result locates the subtrajectory within that trajectory.
	Result core.Result
}

// Stats is a point-in-time snapshot of engine counters. The pruning
// counters aggregate the threshold pipeline's per-query work disposal
// across all served scans: of CandidatesSeen trajectories surviving
// index/filter pruning, LBSkipped were dropped by the lower-bound cascade
// before any DP ran, EarlyAbandoned ran a search that proved nothing could
// enter the ranking, and the remainder were scored in full.
type Stats struct {
	Trajectories   int   `json:"trajectories"`
	Points         int   `json:"points"`
	Shards         int   `json:"shards"`
	Workers        int   `json:"workers"`
	Queries        int64 `json:"queries"`
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEntries   int   `json:"cache_entries"`
	InFlight       int64 `json:"in_flight"`
	CandidatesSeen int64 `json:"candidates_seen"`
	LBSkipped      int64 `json:"lb_skipped"`
	EarlyAbandoned int64 `json:"early_abandoned"`

	// Overload-resilience counters: queries shed by admission control
	// (ShedExpensive of them from the expensive cost classes), queries
	// rejected early because their predicted cost exceeded the remaining
	// deadline budget, and queries answered by a degraded (cheaper)
	// algorithm under the caller's opt-in. QueueDepth/QueueWaitMS/Shedding
	// describe the admission queue right now.
	Shed            int64   `json:"shed"`
	ShedExpensive   int64   `json:"shed_expensive"`
	DeadlineRejects int64   `json:"deadline_rejects"`
	DegradedQueries int64   `json:"degraded_queries"`
	QueueDepth      int64   `json:"queue_depth"`
	QueueWaitMS     float64 `json:"queue_wait_ms"`
	Shedding        bool    `json:"shedding,omitempty"`

	// Learned-search serving state and sampled quality aggregates (see
	// Config.QualitySample and sampleQuality for the exact definitions).
	// The PolicyCompile* fields describe the compiled table policy when one
	// is serving (SetPolicyCompiled): its grid resolution, the action-
	// divergence rate measured at compile time, and the table's own content
	// hash (the serving PolicyFingerprint folds it in).
	PolicyLoaded              bool    `json:"policy_loaded"`
	PolicyName                string  `json:"policy_name,omitempty"`
	PolicyFingerprint         string  `json:"policy_fingerprint,omitempty"`
	PolicyCompiled            bool    `json:"policy_compiled,omitempty"`
	PolicyCompileResolution   int     `json:"policy_compile_resolution,omitempty"`
	PolicyCompileDivergence   float64 `json:"policy_compile_divergence,omitempty"`
	PolicyCompiledFingerprint string  `json:"policy_compiled_fingerprint,omitempty"`
	RLSQueries                int64   `json:"rls_queries"`
	QualitySamples            int64   `json:"quality_samples"`
	ApproxRatio               float64 `json:"approx_ratio"`
	MeanRank                  float64 `json:"mean_rank"`
	SkippedFraction           float64 `json:"skipped_fraction"`

	// Embedding serving state and sampled ANN recall aggregates: the
	// registered encoder (SetEncoder), how many queries used the ANN
	// prefilter, and the mean sampled recall@k of prefiltered rankings
	// against the same search over the exhaustive candidate set (see
	// Config.RecallSample and sampleRecall).
	EncoderLoaded      bool    `json:"encoder_loaded"`
	EncoderFingerprint string  `json:"encoder_fingerprint,omitempty"`
	EncoderDim         int     `json:"encoder_dim,omitempty"`
	EncoderGrid        int     `json:"encoder_grid,omitempty"`
	ANNQueries         int64   `json:"ann_queries"`
	RecallSamples      int64   `json:"recall_samples"`
	MeanRecall         float64 `json:"mean_recall"`
}

// shard is one partition of the store: a slice of trajectories (global IDs
// ≡ shard index mod shard count) behind a core.Database rebuilt per bulk
// load. Reads take the RLock; bulk loads swap in a fresh database under
// the write lock, so in-flight searches keep their consistent snapshot.
type shard struct {
	mu    sync.RWMutex
	kind  core.IndexKind
	trajs []traj.Trajectory
	metas []core.TrajMeta
	db    *core.Database
	// ann indexes the shard's embeddings (TrajMeta.Emb) for the approximate
	// candidate prefilter; nil until an encoder is registered. Rebuilt
	// together with db, so a view() pair is always consistent.
	ann *ann.Index
}

// add appends a batch and rebuilds the shard's database. metas, when
// non-nil, carries precomputed scan metadata (recovered from a storage
// snapshot, or pre-embedded by the engine) aligned with ts; nil metas are
// derived here, as a pure in-memory engine always did. With an encoder
// registered the shard's LSH index is rebuilt over every stored embedding.
func (s *shard) add(ts []traj.Trajectory, metas []core.TrajMeta, enc *encoderEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.trajs = append(s.trajs, ts...)
	if metas != nil {
		s.metas = append(s.metas, metas...)
	} else {
		for _, t := range ts {
			s.metas = append(s.metas, core.DeriveMeta(t))
		}
	}
	s.db = core.NewDatabaseBackend(core.NewMemBackend(s.trajs, s.metas), s.kind)
	s.rebuildANN(enc)
}

// rebuildANN recomputes the shard's LSH index over the current embeddings
// (caller holds the write lock). Without an encoder the index is dropped.
func (s *shard) rebuildANN(enc *encoderEntry) {
	if enc == nil {
		s.ann = nil
		return
	}
	vecs := make([][]float64, len(s.metas))
	for i := range s.metas {
		vecs[i] = s.metas[i].Emb
	}
	s.ann = ann.Build(vecs, enc.model.Dim(), ann.Config{})
}

// reembed re-encodes every stored trajectory under enc into a FRESH meta
// slice (in-flight searches keep reading the old one), rebuilds the
// database and the LSH index, and returns the embeddings in local order.
func (s *shard) reembed(enc *encoderEntry) [][]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	metas := make([]core.TrajMeta, len(s.metas))
	copy(metas, s.metas)
	embs := make([][]float64, len(metas))
	for i := range metas {
		emb := enc.model.Embed(s.trajs[i])
		metas[i].Emb = emb
		embs[i] = emb
	}
	s.metas = metas
	s.db = core.NewDatabaseBackend(core.NewMemBackend(s.trajs, s.metas), s.kind)
	s.rebuildANN(enc)
	return embs
}

// snapshot returns the shard's current database, which is immutable once
// built and therefore safe to search after the lock is released.
func (s *shard) snapshot() *core.Database {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db
}

// view returns the shard's current database together with the LSH index
// built over the same meta slice: a consistent pair, both immutable once
// built and safe to search after the lock is released.
func (s *shard) view() (*core.Database, *ann.Index) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db, s.ann
}

func (s *shard) topK(ctx context.Context, alg core.Algorithm, q traj.Trajectory, k int, filter *geo.Rect, shared *core.SharedKth, st *core.PruneStats, lanes int, annq *annQuery) ([]Match, error) {
	db, ix := s.view()
	if db == nil {
		return nil, nil
	}
	var src core.CandidateSource
	if annq != nil && ix != nil {
		src = annSource{db: db, ix: ix, q: annq}
	}
	local, err := db.TopKPrunedBatchSourceCtx(ctx, alg, q, k, filter, shared, st, src, lanes)
	if err != nil {
		return nil, err
	}
	out := make([]Match, len(local))
	for i, m := range local {
		out[i] = Match{TrajID: db.Traj(m.TrajIndex).ID, Result: m.Result}
	}
	return out, nil
}

// Engine is a sharded, concurrent trajectory-search service. All methods
// are safe for concurrent use.
type Engine struct {
	cfg    Config
	shards []*shard
	sem    chan struct{} // bounded worker pool: one slot per running shard task
	cache  *resultCache

	addMu  sync.Mutex                    // serializes bulk loads so IDs land in shard order
	store  atomic.Pointer[storage.Store] // durable write-ahead log; nil = in-memory only
	nextID atomic.Int64
	points atomic.Int64
	gen    atomic.Uint64

	queries  atomic.Int64
	hits     atomic.Int64
	misses   atomic.Int64
	inflight atomic.Int64

	candSeen  atomic.Int64
	lbSkipped atomic.Int64
	abandoned atomic.Int64

	// overload resilience: the admission controller, the scan-cost model
	// behind early deadline_exceeded rejection, and its counters
	adm             *admitter
	cost            costModel
	deadlineRejects atomic.Int64
	degradedQueries atomic.Int64

	// policy is the registered DQN splitting policy serving "rls" /
	// "rls-skip" (nil until SetPolicy); see policy.go.
	policy     atomic.Pointer[policyEntry]
	rlsQueries atomic.Int64
	quality    qualityTracker

	// encoder is the registered trajectory encoder serving the "embed"
	// algorithm and the ANN candidate prefilter (nil until SetEncoder);
	// see encoder.go.
	encoder    atomic.Pointer[encoderEntry]
	annQueries atomic.Int64
	recall     recallTracker
}

// recordPrune folds one query's pruning counters into the engine totals.
func (e *Engine) recordPrune(st core.PruneStats) {
	e.candSeen.Add(st.Candidates)
	e.lbSkipped.Add(st.LBSkipped)
	e.abandoned.Add(st.Abandoned)
}

// New builds an engine from the config (zero value usable).
func New(cfg Config) *Engine {
	cfg.fill()
	e := &Engine{
		cfg:    cfg,
		shards: make([]*shard, cfg.Shards),
		sem:    make(chan struct{}, cfg.Workers),
		cache:  newResultCache(cfg.CacheSize),
		adm:    newAdmitter(cfg.QuerySlots, cfg.QueueLimit, cfg.QueueTarget, cfg.QueueInterval),
	}
	for i := range e.shards {
		e.shards[i] = &shard{kind: cfg.Index.coreKind()}
	}
	return e
}

// Add bulk-loads trajectories, assigning each a dense global ID (returned
// in input order) and distributing them round-robin over the shards. Each
// affected shard rebuilds its index once per call, so batch loads are much
// cheaper than one-at-a-time loads. Loading invalidates cached results.
//
// With a store attached (AttachStore), the batch is appended to the
// durable log BEFORE it becomes searchable — write-ahead order — and a log
// write failure rejects the whole batch with no visibility change.
func (e *Engine) Add(ts []traj.Trajectory) ([]int, error) {
	e.addMu.Lock()
	defer e.addMu.Unlock()
	st := e.store.Load()
	var recs []storage.Record
	if st != nil {
		var err error
		recs, err = st.Append(ts)
		if err != nil {
			return nil, api.Errorf(api.CodeInternal, "durable append failed: %v", err)
		}
	}
	// seqlock on the store generation: odd while shards are being swapped,
	// even when stable. A query caches its answer only if the generation
	// was even and unchanged across its whole search, so a ranking built
	// from a mixed pre/post-load snapshot can never enter the cache.
	e.gen.Add(1)
	defer e.gen.Add(1)
	enc := e.encoder.Load()
	ids := make([]int, len(ts))
	buckets := make([][]traj.Trajectory, len(e.shards))
	var metaBuckets [][]core.TrajMeta
	if recs != nil || enc != nil {
		metaBuckets = make([][]core.TrajMeta, len(e.shards))
	}
	base := int(e.nextID.Load())
	var pts int64
	for i, t := range ts {
		id := base + i
		ids[i] = id
		pts += int64(t.Len())
		si := id % len(e.shards)
		if recs != nil {
			t = recs[i].Traj
		} else {
			t.ID = id
		}
		buckets[si] = append(buckets[si], t)
		if metaBuckets != nil {
			var meta core.TrajMeta
			if recs != nil {
				// the store assigned the same dense ID and already derived
				// the metadata; reuse both instead of re-deriving
				meta = recs[i].Meta
			} else {
				meta = core.DeriveMeta(t)
			}
			if enc != nil {
				// embed at insert, and record the vector against the store
				// so the next snapshot persists it for recovery
				meta.Emb = enc.model.Embed(t)
				if st != nil {
					st.SetEmbedding(id, enc.fp, meta.Emb)
				}
			}
			metaBuckets[si] = append(metaBuckets[si], meta)
		}
	}
	e.nextID.Store(int64(base + len(ts)))
	for si, b := range buckets {
		if len(b) > 0 {
			var ms []core.TrajMeta
			if metaBuckets != nil {
				ms = metaBuckets[si]
			}
			e.shards[si].add(b, ms, enc)
		}
	}
	e.points.Add(pts)
	e.cache.purge()
	return ids, nil
}

// AttachStore binds a persistent store to an empty engine and loads every
// recovered record into the shards, reusing snapshot-restored metadata
// (MBRs, reversals) instead of re-deriving it. Subsequent Adds are written
// through the store's log before becoming searchable. The engine takes
// over the store's ID sequence, which is dense and therefore matches the
// engine's own assignment scheme exactly.
func (e *Engine) AttachStore(st *storage.Store) error {
	e.addMu.Lock()
	defer e.addMu.Unlock()
	if e.store.Load() != nil {
		return api.Errorf(api.CodeInternal, "engine already has a store attached")
	}
	if e.Len() != 0 {
		return api.Errorf(api.CodeInternal, "cannot attach a store to a non-empty engine (%d trajectories loaded)", e.Len())
	}
	e.gen.Add(1)
	defer e.gen.Add(1)
	recs := st.Records()
	enc := e.encoder.Load()
	var reusable bool
	if enc != nil {
		// snapshot-restored embeddings are reused only under the exact
		// registered encoder (fingerprint match); anything else re-encodes
		fp, ok := st.EmbeddingInfo()
		reusable = ok && fp == enc.fp
	}
	buckets := make([][]traj.Trajectory, len(e.shards))
	metaBuckets := make([][]core.TrajMeta, len(e.shards))
	var pts int64
	for _, r := range recs {
		si := r.ID % len(e.shards)
		meta := r.Meta
		if enc != nil && (!reusable || len(meta.Emb) != enc.model.Dim()) {
			meta.Emb = enc.model.Embed(r.Traj)
			st.SetEmbedding(r.ID, enc.fp, meta.Emb)
		}
		buckets[si] = append(buckets[si], r.Traj)
		metaBuckets[si] = append(metaBuckets[si], meta)
		pts += int64(r.Traj.Len())
	}
	for si, b := range buckets {
		if len(b) > 0 {
			e.shards[si].add(b, metaBuckets[si], enc)
		}
	}
	e.nextID.Store(int64(len(recs)))
	e.points.Add(pts)
	e.store.Store(st)
	e.cache.purge()
	return nil
}

// Store returns the attached persistent store, or nil for a pure
// in-memory engine.
func (e *Engine) Store() *storage.Store { return e.store.Load() }

// Len returns the number of stored trajectories.
func (e *Engine) Len() int { return int(e.nextID.Load()) }

// Traj returns the trajectory with the given global ID.
func (e *Engine) Traj(id int) (traj.Trajectory, bool) {
	if id < 0 || id >= e.Len() {
		return traj.Trajectory{}, false
	}
	s := e.shards[id%len(e.shards)]
	s.mu.RLock()
	defer s.mu.RUnlock()
	local := id / len(e.shards)
	if local >= len(s.trajs) {
		return traj.Trajectory{}, false
	}
	return s.trajs[local], true
}

// ResolveNames builds the named measure and algorithm with their
// registered default parameters.
func ResolveNames(measure, algorithm string) (core.Algorithm, error) {
	return ResolveQuery(measure, algorithm, Params{})
}

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// measureFor builds the named measure, applying parameter overrides. Every
// parameter is strictly scoped to its measure: a tolerance aimed at a
// measure that would ignore it is rejected, so a typo can never silently
// change what a distance means.
func measureFor(name string, p Params) (sim.Measure, error) {
	if !finite(p.EDREps) || p.EDREps < 0 {
		return nil, api.Errorf(api.CodeInvalidArgument, "edr_eps must be finite and non-negative, got %g", p.EDREps)
	}
	if !finite(p.LCSSEps) || p.LCSSEps < 0 {
		return nil, api.Errorf(api.CodeInvalidArgument, "lcss_eps must be finite and non-negative, got %g", p.LCSSEps)
	}
	if !finite(p.CDTWBand) || p.CDTWBand < 0 || p.CDTWBand > 1 {
		return nil, api.Errorf(api.CodeInvalidArgument, "cdtw_band must be in (0, 1], got %g", p.CDTWBand)
	}
	// parameter→measure scoping is driven by the api registration table,
	// so a new parameterized measure needs one table edit, not a new check
	for _, pc := range []struct {
		name string
		set  bool
	}{
		{"edr_eps", p.EDREps != 0},
		{"lcss_eps", p.LCSSEps != 0},
		{"cdtw_band", p.CDTWBand != 0},
	} {
		if pc.set && api.MeasureParams[pc.name] != name {
			return nil, api.Errorf(api.CodeInvalidArgument,
				"%s set but measure is %q, not %q", pc.name, name, api.MeasureParams[pc.name])
		}
	}
	switch {
	case name == "edr" && p.EDREps > 0:
		return sim.EDR{Eps: p.EDREps}, nil
	case name == "lcss" && p.LCSSEps > 0:
		return sim.LCSS{Eps: p.LCSSEps}, nil
	case name == "cdtw" && p.CDTWBand > 0:
		return sim.CDTW{R: p.CDTWBand}, nil
	}
	m, err := sim.ByName(name)
	if err != nil {
		return nil, api.Errorf(api.CodeInvalidArgument, "%v", err)
	}
	return m, nil
}

// ResolveQuery builds the measure and algorithm a query names, applying
// per-query parameter overrides. Algorithm names, aliases and
// measure pinning (spring/ucr are DTW-only, embed is t2vec-only) come
// from the api registration table, so pairing a pinned algorithm with
// any other measure is rejected rather than silently returning
// mislabeled distances. All resolution failures are typed *api.Error
// values with code invalid_argument.
func ResolveQuery(measure, algorithm string, p Params) (core.Algorithm, error) {
	m, err := measureFor(measure, p)
	if err != nil {
		return nil, err
	}
	info, aerr := api.CheckAlgorithm(measure, algorithm)
	if aerr != nil {
		return nil, aerr
	}
	if p.POSDelay != 0 {
		if p.POSDelay < 0 {
			return nil, api.Errorf(api.CodeInvalidArgument, "pos_delay must be positive, got %d", p.POSDelay)
		}
		if info.Name != "pos-d" {
			return nil, api.Errorf(api.CodeInvalidArgument, "pos_delay set but algorithm is %q, not \"pos-d\"", algorithm)
		}
		return core.POSD{M: m, D: p.POSDelay}, nil
	}
	if info.NeedsPolicy {
		// the learned searches bind a trained policy, which lives in an
		// engine's registry — resolvable only through Engine.ResolveAlgorithm
		return nil, api.Errorf(api.CodeInvalidArgument,
			"algorithm %q requires a loaded policy; resolve it through an engine with one registered", algorithm)
	}
	if info.NeedsEncoder {
		// embedding ranking binds a trajectory encoder, which lives in an
		// engine's registry — resolvable only through Engine.ResolveAlgorithm
		return nil, api.Errorf(api.CodeInvalidArgument,
			"algorithm %q requires a registered encoder; resolve it through an engine with one registered", algorithm)
	}
	alg, ok := core.AlgorithmFor(info.Name, m)
	if !ok {
		return nil, api.Errorf(api.CodeInvalidArgument, "unknown algorithm %q", algorithm)
	}
	return alg, nil
}

// Resolve builds the measure and algorithm a query names, binding the
// learned searches ("rls", "rls-skip") to the engine's registered policy.
func (e *Engine) Resolve(q Query) (core.Algorithm, error) {
	return e.ResolveAlgorithm(q.Measure, q.Algorithm, q.Params)
}

// validateQuery rejects malformed queries with typed invalid_argument
// errors before any search work starts. The same checks guard the wire
// boundary (api.Trajectory.ToTraj) and the in-process path, so NaN/Inf
// coordinates and nonsensical k/pages can never reach a distance kernel.
func (e *Engine) validateQuery(q Query) *api.Error {
	if q.Q.Len() == 0 {
		return api.Errorf(api.CodeInvalidArgument, "query trajectory is empty")
	}
	for i, p := range q.Q.Points {
		if !finite(p.X) || !finite(p.Y) || !finite(p.T) {
			return api.Errorf(api.CodeInvalidArgument, "query point %d has a non-finite coordinate", i)
		}
	}
	if q.K <= 0 {
		return api.Errorf(api.CodeInvalidArgument, "k must be positive, got %d", q.K)
	}
	if n := e.Len(); q.K > n {
		return api.Errorf(api.CodeInvalidArgument, "k %d exceeds store size %d", q.K, n)
	}
	if q.Offset < 0 {
		return api.Errorf(api.CodeInvalidArgument, "offset must be non-negative, got %d", q.Offset)
	}
	if q.Limit < 0 {
		return api.Errorf(api.CodeInvalidArgument, "limit must be non-negative, got %d", q.Limit)
	}
	if q.Bound != nil {
		if b := *q.Bound; !finite(b) || b < 0 {
			return api.Errorf(api.CodeInvalidArgument, "bound must be finite and non-negative, got %g", b)
		}
	}
	if f := q.Filter; f != nil {
		if !finite(f.MinX) || !finite(f.MinY) || !finite(f.MaxX) || !finite(f.MaxY) {
			return api.Errorf(api.CodeInvalidArgument, "filter has a non-finite coordinate")
		}
		if f.IsEmpty() {
			return api.Errorf(api.CodeInvalidArgument, "filter rectangle is empty")
		}
	}
	if a := q.ANN; a != nil {
		if a.Candidates <= 0 {
			return api.Errorf(api.CodeInvalidArgument, "ann.candidates must be positive, got %d", a.Candidates)
		}
		if a.Probes <= 0 {
			return api.Errorf(api.CodeInvalidArgument, "ann.probes must be positive, got %d", a.Probes)
		}
	}
	return nil
}

// pageOf selects the ranking window [offset, offset+limit) (limit 0 = to
// the end). The page aliases full — which cache hits share — so callers
// must treat it as read-only.
func pageOf(full []Match, offset, limit int) []Match {
	if offset >= len(full) {
		return nil
	}
	out := full[offset:]
	if limit > 0 && limit < len(out) {
		out = out[:limit]
	}
	return out
}

// collapseDuplicates keeps the best-ranked match per distinct matched
// subtrajectory content. Duplicates arise when the same data is bulk-
// loaded more than once under different global IDs; with Query.Distinct
// the ranking collapses them, so it may end up shorter than k. The input
// must be freshly allocated (it is filtered in place).
func (e *Engine) collapseDuplicates(ms []Match) []Match {
	if len(ms) < 2 {
		return ms
	}
	seen := make(map[uint64][]traj.Trajectory, len(ms))
	out := ms[:0]
next:
	for _, m := range ms {
		t, ok := e.Traj(m.TrajID)
		if !ok {
			out = append(out, m)
			continue
		}
		sub := t.Sub(m.Result.Interval.I, m.Result.Interval.J)
		d := digest(sub)
		for _, prev := range seen[d] {
			if prev.Equal(sub) {
				continue next
			}
		}
		seen[d] = append(seen[d], sub)
		out = append(out, m)
	}
	return out
}

// TopK answers a top-k query: one bounded search task per shard, merged
// into a global ascending ranking, with distinct collapsing and
// offset/limit paging applied last. cached reports whether the answer came
// from the LRU; the returned slice is shared on cache hits and must not be
// mutated. TopK honors ctx cancellation and deadlines. Validation and
// resolution failures are typed *api.Error values.
func (e *Engine) TopK(ctx context.Context, q Query) (matches []Match, cached bool, err error) {
	_, page, cached, _, err := e.topK(ctx, q)
	return page, cached, err
}

// scatter fans the search out — one bounded task per shard, every worker
// sharing the running global k-th-best — and k-way merges the per-shard
// ascending lists into the global top-k. It is the common scan core of topK
// and of the quality sampler's exact rescans.
func (e *Engine) scatter(ctx context.Context, alg core.Algorithm, q Query) ([]Match, core.PruneStats, error) {
	// the shared best-so-far: every shard worker offers its matches here
	// and reads the running GLOBAL k-th-best back, so one shard's good
	// matches prune another shard's scan. A wire-propagated bound seeds it
	// so remote shards prune like local ones from the first candidate.
	shared := core.NewSharedKth(q.K)
	if q.Bound != nil {
		shared.Seed(*q.Bound)
	}
	// the ANN prefilter state: the query embedding is computed once here
	// and shared by every shard worker, like the shared threshold
	var annq *annQuery
	if q.ANN != nil {
		if ent := e.encoder.Load(); ent != nil {
			annq = e.annQueryFor(ent, q)
		}
	}
	perShard := make([][]Match, len(e.shards))
	stats := make([]core.PruneStats, len(e.shards))
	errs := make([]error, len(e.shards))
	var wg sync.WaitGroup
	for i, s := range e.shards {
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			select {
			case e.sem <- struct{}{}:
				defer func() { <-e.sem }()
			case <-ctx.Done():
				errs[i] = ctx.Err()
				return
			}
			if ferr := failpoint.InjectCtx(ctx, "engine/scan"); ferr != nil {
				errs[i] = ferr
				return
			}
			perShard[i], errs[i] = s.topK(ctx, alg, q.Q, q.K, q.Filter, shared, &stats[i], e.cfg.BatchLanes, annq)
		}(i, s)
	}
	wg.Wait()
	var prune core.PruneStats
	for _, serr := range errs {
		if serr != nil {
			return nil, prune, serr
		}
	}
	for i := range stats {
		prune.Add(stats[i])
	}
	return mergeTopK(perShard, q.K), prune, nil
}

// topK is TopK also returning the full (unpaged) ranking, which the API
// adapter reports as the result's Total, and the degradation marker when
// the overload-resilience plan substituted a cheaper algorithm.
func (e *Engine) topK(ctx context.Context, q Query) (full, page []Match, cached bool, deg *api.Degraded, err error) {
	if aerr := e.validateQuery(q); aerr != nil {
		return nil, nil, false, nil, aerr
	}
	alg, policyFP, err := e.resolveAlg(q.Measure, q.Algorithm, q.Params)
	if err != nil {
		return nil, nil, false, nil, err
	}
	ent, aerr := e.annCheck(q)
	if aerr != nil {
		return nil, nil, false, nil, aerr
	}
	var encFP uint64
	if ent != nil {
		encFP = ent.fp
		e.annQueries.Add(1)
	}
	e.queries.Add(1)
	if _, ok := alg.(core.RLS); ok {
		e.rlsQueries.Add(1)
	}
	e.inflight.Add(1)
	defer e.inflight.Add(-1)

	var key cacheKey
	if e.cache != nil {
		key = e.cacheKeyFor(q, policyFP, encFP)
		if ms, ok := e.cache.get(key, q.Q); ok {
			e.hits.Add(1)
			return ms, pageOf(ms, q.Offset, q.Limit), true, nil, nil
		}
		e.misses.Add(1)
	}

	rel, deg, aerr := e.planAdmit(ctx, &q)
	if aerr != nil {
		return nil, nil, false, nil, aerr
	}
	defer rel()
	if deg != nil {
		// the plan substituted a cheaper algorithm: rebind it and retry the
		// cache under the rewritten query's key
		alg, policyFP, err = e.resolveAlg(q.Measure, q.Algorithm, q.Params)
		if err != nil {
			return nil, nil, false, nil, err
		}
		if e.cache != nil {
			key = e.cacheKeyFor(q, policyFP, encFP)
			if ms, ok := e.cache.get(key, q.Q); ok {
				e.hits.Add(1)
				return ms, pageOf(ms, q.Offset, q.Limit), true, deg, nil
			}
		}
	}

	gen := e.gen.Load()
	n := e.Len()
	scanStart := time.Now()
	merged, prune, err := e.scatter(ctx, alg, q)
	if err != nil {
		return nil, nil, false, nil, err
	}
	e.cost.observe(q.Measure, q.Algorithm, n, time.Since(scanStart))
	e.recordPrune(prune)
	// sampled serving quality of the learned searches: compare this ranking
	// against the exact one over the same snapshot — before distinct
	// collapsing, which the exact reference scan does not apply
	if rls, ok := alg.(core.RLS); ok && e.quality.sampled(e.cfg.QualitySample) {
		e.sampleQuality(ctx, q, rls, merged, gen)
	}
	// sampled ANN recall: compare the prefiltered ranking against the same
	// search over the exhaustive candidate set, on the same snapshot
	if q.ANN != nil && e.recall.sampled(e.cfg.RecallSample) {
		e.sampleRecall(ctx, q, alg, merged, gen)
	}
	if q.Distinct {
		merged = e.collapseDuplicates(merged)
	}
	// only cache if the store was stable (even generation) and no load
	// overlapped the search — see the seqlock in Add. The cache keeps its
	// own copy so the miss-path return stays caller-owned.
	if e.cache != nil && key.gen%2 == 0 && e.gen.Load() == key.gen {
		e.cache.put(key, q.Q, slices.Clone(merged))
	}
	return merged, pageOf(merged, q.Offset, q.Limit), false, deg, nil
}

// mergeHeap is a min-heap over the heads of per-shard ascending match
// lists, ordered by core.RankBefore (with the global trajectory ID as the
// identifier) so the merged order matches a flat database's ranking.
type mergeHeap []mergeCursor

type mergeCursor struct {
	list []Match
	pos  int
}

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	a, b := h[i].list[h[i].pos], h[j].list[h[j].pos]
	return core.RankBefore(a.Result.Dist, a.TrajID, a.Result.Interval,
		b.Result.Dist, b.TrajID, b.Result.Interval)
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeCursor)) }
func (h *mergeHeap) Pop() any     { old := *h; c := old[len(old)-1]; *h = old[:len(old)-1]; return c }
func (h mergeHeap) head() Match   { return h[0].list[h[0].pos] }
func (h *mergeHeap) advance() {
	(*h)[0].pos++
	if (*h)[0].pos >= len((*h)[0].list) {
		heap.Pop(h)
	} else {
		heap.Fix(h, 0)
	}
}

// MergeTopK k-way merges ascending top-k lists — per-shard, or per-node
// for the distributed coordinator, which reuses the engine's merge
// machinery over wire rankings whose trajectory IDs it has translated to
// its own global ID space. Each input list must be ascending under
// core.RankBefore with globally comparable IDs; the merged ranking is then
// byte-identical to a flat database's.
func MergeTopK(lists [][]Match, k int) []Match { return mergeTopK(lists, k) }

// mergeTopK k-way merges per-shard ascending top-k lists into the global
// top k.
func mergeTopK(perShard [][]Match, k int) []Match {
	h := make(mergeHeap, 0, len(perShard))
	total := 0
	for _, ms := range perShard {
		if len(ms) > 0 {
			h = append(h, mergeCursor{list: ms})
			total += len(ms)
		}
	}
	heap.Init(&h)
	if k < 0 {
		k = 0
	}
	if k > total {
		k = total
	}
	out := make([]Match, 0, k)
	for len(out) < k && h.Len() > 0 {
		out = append(out, h.head())
		h.advance()
	}
	return out
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	st := Stats{
		Trajectories:   e.Len(),
		Points:         int(e.points.Load()),
		Shards:         len(e.shards),
		Workers:        e.cfg.Workers,
		Queries:        e.queries.Load(),
		CacheHits:      e.hits.Load(),
		CacheMisses:    e.misses.Load(),
		CacheEntries:   e.cache.len(),
		InFlight:       e.inflight.Load(),
		CandidatesSeen: e.candSeen.Load(),
		LBSkipped:      e.lbSkipped.Load(),
		EarlyAbandoned: e.abandoned.Load(),
		RLSQueries:     e.rlsQueries.Load(),

		Shed:            e.adm.shed.Load(),
		ShedExpensive:   e.adm.shedExpensive.Load(),
		DeadlineRejects: e.deadlineRejects.Load(),
		DegradedQueries: e.degradedQueries.Load(),
		QueueDepth:      e.adm.queued.Load(),
		QueueWaitMS:     float64(e.adm.queueWait().Microseconds()) / 1000,
		Shedding:        e.adm.shedding.Load(),
	}
	if info, ok := e.Policy(); ok {
		st.PolicyLoaded = true
		st.PolicyName = info.Name
		st.PolicyFingerprint = info.Fingerprint
		st.PolicyCompiled = info.Compiled
		st.PolicyCompileResolution = info.CompileResolution
		st.PolicyCompileDivergence = info.CompileDivergence
		st.PolicyCompiledFingerprint = info.CompiledFingerprint
	}
	st.QualitySamples, st.ApproxRatio, st.MeanRank, st.SkippedFraction = e.quality.snapshot()
	if info, ok := e.Encoder(); ok {
		st.EncoderLoaded = true
		st.EncoderFingerprint = info.Fingerprint
		st.EncoderDim = info.Dim
		st.EncoderGrid = info.Grid
	}
	st.ANNQueries = e.annQueries.Load()
	st.RecallSamples, st.MeanRecall = e.recall.snapshot()
	return st
}
