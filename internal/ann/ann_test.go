package ann

import (
	"math/rand"
	"testing"
)

func randVecs(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for d := range v {
			v[d] = rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

// exactTopK is the brute-force reference ranking.
func exactTopK(vecs [][]float64, q []float64, k int) []int {
	ix := Build(vecs, len(q), Config{})
	return ix.scanAll(q, k)
}

func TestSearchExactWhenUnderfilled(t *testing.T) {
	// want close to the corpus size forces the full-scan fallback: results
	// must then be the exact embedding-space ranking.
	vecs := randVecs(50, 8, 1)
	ix := Build(vecs, 8, Config{})
	q := vecs[7]
	got := ix.Search(q, 49, 2)
	wantIDs := exactTopK(vecs, q, 49)
	if len(got) != len(wantIDs) {
		t.Fatalf("got %d results, want %d", len(got), len(wantIDs))
	}
	for i := range got {
		if got[i] != wantIDs[i] {
			t.Fatalf("rank %d: got %d want %d", i, got[i], wantIDs[i])
		}
	}
	if got[0] != 7 {
		t.Fatalf("self should rank first, got %d", got[0])
	}
}

func TestSearchRecall(t *testing.T) {
	// clustered corpus: candidate sets from probing should capture most of
	// the true top-10 while visiting a subset of the corpus.
	rng := rand.New(rand.NewSource(2))
	const dim, n = 16, 1000
	centers := randVecs(20, dim, 3)
	vecs := make([][]float64, n)
	for i := range vecs {
		c := centers[i%len(centers)]
		v := make([]float64, dim)
		for d := range v {
			v[d] = c[d] + 0.1*rng.NormFloat64()
		}
		vecs[i] = v
	}
	ix := Build(vecs, dim, Config{})
	const k, want = 10, 100
	var hit, total int
	for qi := 0; qi < 20; qi++ {
		q := vecs[qi*37]
		truth := exactTopK(vecs, q, k)
		got := ix.Search(q, want, 4)
		in := make(map[int]bool, len(got))
		for _, vi := range got {
			in[vi] = true
		}
		for _, vi := range truth {
			total++
			if in[vi] {
				hit++
			}
		}
	}
	recall := float64(hit) / float64(total)
	if recall < 0.95 {
		t.Fatalf("recall@%d = %.3f, want >= 0.95", k, recall)
	}
}

func TestSearchSkipsMismatchedVectors(t *testing.T) {
	vecs := randVecs(20, 8, 4)
	vecs[3] = nil                // not embedded
	vecs[5] = make([]float64, 4) // stale encoder dimensionality
	ix := Build(vecs, 8, Config{})
	got := ix.Search(vecs[0], 20, 4)
	if len(got) != 18 {
		t.Fatalf("got %d results, want 18 (mismatched vectors excluded)", len(got))
	}
	for _, vi := range got {
		if vi == 3 || vi == 5 {
			t.Fatalf("mismatched vector %d surfaced", vi)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	vecs := randVecs(100, 8, 5)
	a := Build(vecs, 8, Config{Seed: 9})
	b := Build(vecs, 8, Config{Seed: 9})
	q := vecs[42]
	ga, gb := a.Search(q, 10, 3), b.Search(q, 10, 3)
	if len(ga) != len(gb) {
		t.Fatalf("lengths differ: %d vs %d", len(ga), len(gb))
	}
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatalf("result %d differs: %d vs %d", i, ga[i], gb[i])
		}
	}
}
