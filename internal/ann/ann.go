// Package ann is an approximate-nearest-neighbor index over trajectory
// embeddings: multi-probe locality-sensitive hashing with a tunable bucket
// width, in the spirit of Tunable-LSH (Aluç, Özsu, Daudjee, VLDB J. 2019).
//
// The index is the coarse half of the engine's candidate-generation split:
// it proposes a small candidate set by embedding distance and the exact
// lower-bound cascade reranks it (see core.CandidateSource). Accuracy
// therefore only needs to hold at the candidate-set level — the index
// ranks every probed candidate by its EXACT embedding distance before
// returning, and falls back to a full embedding scan when probing
// under-fills the request, so Search degrades toward exact embedding-space
// retrieval rather than toward garbage.
//
// Scheme: L hash tables, each keyed by a composite of H quantized random
// projections h(v) = floor((a·v + b) / w). The width w is auto-tuned from
// sampled pairwise distances of the indexed vectors (the "tunable" knob:
// a width tracking the data's distance scale keeps bucket occupancy useful
// as the corpus changes, where a fixed width degenerates to one giant or
// all-singleton buckets). Multi-probe search additionally visits the
// buckets reachable by perturbing the least-confident hash coordinates
// (those closest to a quantization boundary), recovering neighbors that
// straddle a boundary without paying for more tables.
//
// An Index is immutable after Build and safe for concurrent Search.
package ann

import (
	"math"
	"math/rand"
	"sort"
)

// Config tunes Build. The zero value selects the documented defaults.
type Config struct {
	// Tables is the number of hash tables L (default 6).
	Tables int
	// Hashes is the number of projections per table H (default 4).
	Hashes int
	// Width is the quantization width w; 0 auto-tunes from sampled
	// pairwise distances (the default, and almost always what you want).
	Width float64
	// Seed drives projection sampling (default 1). Builds are
	// deterministic for a given (Seed, vectors) pair.
	Seed int64
}

func (c *Config) fill() {
	if c.Tables <= 0 {
		c.Tables = 6
	}
	if c.Hashes <= 0 {
		c.Hashes = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Index is a built ANN index over a fixed set of vectors.
type Index struct {
	dim    int
	vecs   [][]float64
	width  float64
	tables []table
}

type table struct {
	// projs is Hashes rows of dim projection coefficients; offs the
	// per-hash quantization offsets.
	projs [][]float64
	offs  []float64
	bkts  map[uint64][]int32
}

// Build indexes vecs (the i-th search result refers to vecs[i]). Vectors
// are referenced, not copied, and must stay immutable. Vectors whose
// length differs from dim (not yet embedded, or embedded by a stale
// encoder) are skipped: they are unreachable through the index, exactly as
// they are incomparable in embedding space. Returns nil when dim <= 0.
func Build(vecs [][]float64, dim int, cfg Config) *Index {
	if dim <= 0 {
		return nil
	}
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := &Index{dim: dim, vecs: vecs, width: cfg.Width}
	if idx.width <= 0 {
		idx.width = tuneWidth(vecs, dim, rng)
	}
	idx.tables = make([]table, cfg.Tables)
	for ti := range idx.tables {
		t := table{
			projs: make([][]float64, cfg.Hashes),
			offs:  make([]float64, cfg.Hashes),
			bkts:  make(map[uint64][]int32),
		}
		for hi := range t.projs {
			p := make([]float64, dim)
			for d := range p {
				p[d] = rng.NormFloat64()
			}
			t.projs[hi] = p
			t.offs[hi] = rng.Float64() * idx.width
		}
		code := make([]int64, cfg.Hashes)
		for vi, v := range vecs {
			if len(v) != dim {
				continue
			}
			t.quantize(v, idx.width, code, nil)
			k := keyOf(code)
			t.bkts[k] = append(t.bkts[k], int32(vi))
		}
		idx.tables[ti] = t
	}
	return idx
}

// tuneWidth picks the quantization width from the distance scale of the
// data: the mean Euclidean distance over up to 256 sampled pairs, halved
// so that near-neighbor pairs (well below the mean) tend to share cells
// while the bulk of the corpus does not. Falls back to 1 when there is
// nothing to sample.
func tuneWidth(vecs [][]float64, dim int, rng *rand.Rand) float64 {
	var pool []int
	for i, v := range vecs {
		if len(v) == dim {
			pool = append(pool, i)
		}
	}
	if len(pool) < 2 {
		return 1
	}
	var sum float64
	var n int
	for s := 0; s < 256; s++ {
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		if a == b {
			continue
		}
		sum += euclid(vecs[a], vecs[b])
		n++
	}
	if n == 0 || sum == 0 {
		return 1
	}
	w := sum / float64(n) / 2
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return 1
	}
	return w
}

// quantize writes the table's hash code of v into code; when frac is
// non-nil it also records each coordinate's distance to its nearest
// quantization boundary in [0, 0.5] (small = least confident), which
// orders the multi-probe perturbations.
func (t *table) quantize(v []float64, width float64, code []int64, frac []float64) {
	for hi, p := range t.projs {
		var dot float64
		for d, c := range p {
			dot += c * v[d]
		}
		x := (dot + t.offs[hi]) / width
		f := math.Floor(x)
		code[hi] = int64(f)
		if frac != nil {
			r := x - f // in [0,1): distance above the lower boundary
			frac[hi] = math.Min(r, 1-r)
		}
	}
}

// keyOf folds a hash code into a 64-bit bucket key (FNV-1a).
func keyOf(code []int64) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range code {
		u := uint64(c)
		for s := 0; s < 64; s += 8 {
			h ^= (u >> s) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

// Width returns the (possibly auto-tuned) quantization width.
func (ix *Index) Width() float64 { return ix.width }

// Len returns the number of vectors the index was built over.
func (ix *Index) Len() int { return len(ix.vecs) }

// Search returns up to want vector indices ranked by exact embedding
// distance to q, ascending. probes is the number of buckets visited per
// table (minimum 1; extra probes visit the buckets reachable by perturbing
// the least-confident hash coordinate by ±1). When the probed buckets
// yield fewer than want distinct candidates the search widens to a full
// embedding scan, so Search never returns fewer than min(want, indexed)
// results. The returned slice is freshly allocated.
func (ix *Index) Search(q []float64, want, probes int) []int {
	if ix == nil || want <= 0 || len(q) != ix.dim {
		return nil
	}
	if probes < 1 {
		probes = 1
	}
	seen := make(map[int32]struct{})
	code := make([]int64, 0, 8)
	frac := make([]float64, 0, 8)
	for ti := range ix.tables {
		t := &ix.tables[ti]
		code = code[:len(t.projs)]
		frac = frac[:len(t.projs)]
		t.quantize(q, ix.width, code, frac)
		ix.gather(t, code, seen)
		if probes > 1 {
			// visit perturbed buckets in increasing boundary distance: the
			// coordinates most likely to have quantized a true neighbor into
			// the adjacent cell come first
			order := make([]int, len(frac))
			for i := range order {
				order[i] = i
			}
			sort.Slice(order, func(a, b int) bool { return frac[order[a]] < frac[order[b]] })
			left := probes - 1
			for _, hi := range order {
				if left == 0 {
					break
				}
				for _, delta := range []int64{1, -1} {
					if left == 0 {
						break
					}
					code[hi] += delta
					ix.gather(t, code, seen)
					code[hi] -= delta
					left--
				}
			}
		}
	}
	if len(seen) < want {
		return ix.scanAll(q, want)
	}
	cands := make([]int, 0, len(seen))
	for vi := range seen {
		cands = append(cands, int(vi))
	}
	return ix.rank(q, cands, want)
}

func (ix *Index) gather(t *table, code []int64, seen map[int32]struct{}) {
	for _, vi := range t.bkts[keyOf(code)] {
		seen[vi] = struct{}{}
	}
}

// scanAll is the exact-embedding fallback: rank every indexed vector.
func (ix *Index) scanAll(q []float64, want int) []int {
	cands := make([]int, 0, len(ix.vecs))
	for vi, v := range ix.vecs {
		if len(v) == ix.dim {
			cands = append(cands, vi)
		}
	}
	return ix.rank(q, cands, want)
}

// rank orders cands by exact embedding distance to q (ties by index, so
// results are deterministic) and truncates to want.
func (ix *Index) rank(q []float64, cands []int, want int) []int {
	type scored struct {
		vi int
		d  float64
	}
	ss := make([]scored, len(cands))
	for i, vi := range cands {
		ss[i] = scored{vi: vi, d: euclid(ix.vecs[vi], q)}
	}
	sort.Slice(ss, func(a, b int) bool {
		if ss[a].d != ss[b].d {
			return ss[a].d < ss[b].d
		}
		return ss[a].vi < ss[b].vi
	})
	if want > len(ss) {
		want = len(ss)
	}
	out := make([]int, want)
	for i := range out {
		out[i] = ss[i].vi
	}
	return out
}

func euclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
