module simsub

go 1.24
