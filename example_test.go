package simsub_test

import (
	"fmt"

	"simsub"
)

// The most basic use: exact similar subtrajectory search under DTW.
func ExampleExact() {
	data := simsub.FromXY(0, 0, 1, 0, 2, 0, 2, 1, 2, 2, 3, 2)
	query := simsub.FromXY(2, 1, 2, 2)
	res := simsub.Exact(simsub.DTW()).Search(data, query)
	fmt.Printf("best subtrajectory %v with distance %.1f\n", res.Interval, res.Dist)
	// Output:
	// best subtrajectory [3,4] with distance 0.0
}

// The fast splitting search trades a little effectiveness for O(n·m) time.
func ExamplePrefixSuffix() {
	data := simsub.FromXY(0, 0, 1, 0, 2, 0, 2, 1, 2, 2, 3, 2)
	query := simsub.FromXY(2, 1, 2, 2)
	res := simsub.PrefixSuffix(simsub.DTW()).Search(data, query)
	exact := simsub.Exact(simsub.DTW()).Search(data, query)
	fmt.Printf("PSS distance %.1f, exact distance %.1f\n", res.Dist, exact.Dist)
	// PSS is greedy: on this input it misses the perfect match by one split.
	// Output:
	// PSS distance 1.0, exact distance 0.0
}

// Top-k subtrajectories of a single data trajectory (§3.1's extension).
func ExampleTopKSubtrajectories() {
	data := simsub.FromXY(0, 0, 1, 0, 2, 0, 3, 0)
	query := simsub.FromXY(1, 0, 2, 0)
	top := simsub.TopKSubtrajectories(simsub.DTW(), data, query, 2, true)
	for i, r := range top {
		fmt.Printf("rank %d: %v distance %.1f\n", i+1, r.Interval, r.Dist)
	}
	// Output:
	// rank 1: [1,2] distance 0.0
	// rank 2: [3,3] distance 3.0
}

// Database search with R-tree pruning and top-k ranking.
func ExampleDatabase_topK() {
	near := simsub.FromXY(0, 0, 1, 0, 2, 0)
	far := simsub.FromXY(100, 100, 101, 100)
	near.ID, far.ID = 1, 2
	db := simsub.NewDatabase([]simsub.Trajectory{near, far}, true)
	query := simsub.FromXY(1, 0, 2, 0)
	matches := db.TopK(simsub.Exact(simsub.DTW()), query, 1)
	best := matches[0]
	fmt.Printf("trajectory %d, subtrajectory %v, distance %.1f\n",
		db.Traj(best.TrajIndex).ID, best.Result.Interval, best.Result.Dist)
	// Output:
	// trajectory 1, subtrajectory [1,2], distance 0.0
}

// Similarity values are derived from distances with Θ = 1/(1+d).
func ExampleSim() {
	fmt.Printf("%.2f %.2f %.2f\n", simsub.Sim(0), simsub.Sim(1), simsub.Sim(3))
	// Output:
	// 1.00 0.50 0.25
}
