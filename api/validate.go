package api

import (
	"math"

	"simsub/internal/geo"
	"simsub/internal/traj"
)

// This file is the wire boundary's validation layer: every trajectory,
// rectangle and spec coming off the network (or handed to the in-process
// facade) passes through here before it can reach a distance kernel, so
// NaN/Inf coordinates, empty trajectories and malformed pages are rejected
// as CodeInvalidArgument instead of silently poisoning a search.

func finite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// ToTraj validates the wire trajectory and converts it: points must be
// [x, y] or [x, y, t], every coordinate must be finite, and the trajectory
// must be non-empty.
func (t Trajectory) ToTraj() (traj.Trajectory, *Error) {
	if len(t.Points) == 0 {
		return traj.Trajectory{}, Errorf(CodeInvalidArgument, "trajectory is empty")
	}
	pts := make([]geo.Point, len(t.Points))
	for i, p := range t.Points {
		switch len(p) {
		case 2:
			pts[i] = geo.Point{X: p[0], Y: p[1], T: float64(i)}
		case 3:
			pts[i] = geo.Point{X: p[0], Y: p[1], T: p[2]}
		default:
			return traj.Trajectory{}, Errorf(CodeInvalidArgument,
				"point %d has %d coordinates, want [x,y] or [x,y,t]", i, len(p))
		}
		if !finite(pts[i].X) || !finite(pts[i].Y) || !finite(pts[i].T) {
			return traj.Trajectory{}, Errorf(CodeInvalidArgument,
				"point %d has a non-finite coordinate", i)
		}
	}
	return traj.Trajectory{Points: pts}, nil
}

// Validate checks the filter rectangle: finite and non-empty.
func (r Rect) Validate() *Error {
	if !finite(r.MinX) || !finite(r.MinY) || !finite(r.MaxX) || !finite(r.MaxY) {
		return Errorf(CodeInvalidArgument, "filter has a non-finite coordinate")
	}
	if r.MinX > r.MaxX || r.MinY > r.MaxY {
		return Errorf(CodeInvalidArgument,
			"filter is empty: min (%g, %g) exceeds max (%g, %g)", r.MinX, r.MinY, r.MaxX, r.MaxY)
	}
	return nil
}

// ValidateBound checks the spec's optional k-th-best bound: when present
// it must be finite and non-negative, so a NaN/Inf or negative bound is
// rejected at the wire boundary instead of poisoning the threshold
// pipeline it seeds.
func (s QuerySpec) ValidateBound() *Error {
	if s.Bound == nil {
		return nil
	}
	if b := *s.Bound; !finite(b) || b < 0 {
		return Errorf(CodeInvalidArgument, "bound must be finite and non-negative, got %g", b)
	}
	return nil
}

// ValidateANN checks the spec's optional ANN prefilter knob: the
// candidate budget must be positive and the probe width non-negative
// (0 means "use the default", filled by WithDefaults).
func (s QuerySpec) ValidateANN() *Error {
	if s.ANN == nil {
		return nil
	}
	if s.ANN.Candidates <= 0 {
		return Errorf(CodeInvalidArgument, "ann.candidates must be positive, got %d", s.ANN.Candidates)
	}
	if s.ANN.Probes < 0 {
		return Errorf(CodeInvalidArgument, "ann.probes must be non-negative, got %d", s.ANN.Probes)
	}
	return nil
}

// WithDefaults returns the spec with empty measure/algorithm names filled
// in (DefaultMeasure, DefaultTopKAlgorithm) and, when the ANN prefilter
// is requested, its probe width defaulted (DefaultANNProbes). The ANN
// spec is copied before the default is applied, so the caller's spec is
// never mutated through the shared pointer.
func (s QuerySpec) WithDefaults() QuerySpec {
	if s.Measure == "" {
		s.Measure = DefaultMeasure
	}
	if s.Algorithm == "" {
		s.Algorithm = DefaultTopKAlgorithm
	}
	if s.ANN != nil && s.ANN.Probes == 0 {
		ann := *s.ANN
		ann.Probes = DefaultANNProbes
		s.ANN = &ann
	}
	return s
}
