package api

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"testing"
)

// TestToTrajRejectsBadWireData is the wire-boundary gate: NaN/Inf
// coordinates, empty trajectories and bad point arity must all be typed
// invalid_argument errors instead of flowing into distance kernels.
func TestToTrajRejectsBadWireData(t *testing.T) {
	bad := map[string]Trajectory{
		"empty":      {},
		"nil points": {Points: nil},
		"arity 1":    {Points: [][]float64{{1}}},
		"arity 4":    {Points: [][]float64{{1, 2, 3, 4}}},
		"NaN x":      {Points: [][]float64{{math.NaN(), 0}}},
		"NaN y":      {Points: [][]float64{{0, math.NaN()}}},
		"+Inf x":     {Points: [][]float64{{math.Inf(1), 0}}},
		"-Inf t":     {Points: [][]float64{{0, 0, math.Inf(-1)}}},
		"late NaN":   {Points: [][]float64{{0, 0}, {1, 1}, {math.NaN(), 2}}},
	}
	for name, wt := range bad {
		if _, aerr := wt.ToTraj(); aerr == nil || aerr.Code != CodeInvalidArgument {
			t.Errorf("%s: error %+v, want invalid_argument", name, aerr)
		}
	}

	good := Trajectory{Points: [][]float64{{1, 2}, {3, 4, 5}}}
	tr, aerr := good.ToTraj()
	if aerr != nil {
		t.Fatalf("valid trajectory rejected: %v", aerr)
	}
	if tr.Len() != 2 || tr.Pt(0).T != 0 || tr.Pt(1).T != 5 {
		t.Fatalf("conversion wrong: %+v", tr.Points)
	}
	// round trip through the response-side conversion
	back := FromTraj(tr)
	if len(back.Points) != 2 || back.Points[0][0] != 1 || back.Points[1][2] != 5 {
		t.Fatalf("FromTraj round trip wrong: %+v", back.Points)
	}
}

func TestRectValidate(t *testing.T) {
	if aerr := (Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}).Validate(); aerr != nil {
		t.Fatalf("valid rect rejected: %v", aerr)
	}
	for name, r := range map[string]Rect{
		"inverted x": {MinX: 2, MaxX: 1, MaxY: 1},
		"inverted y": {MinY: 2, MaxX: 1, MaxY: 1},
		"NaN":        {MinX: math.NaN(), MaxX: 1, MaxY: 1},
		"Inf":        {MaxX: math.Inf(1), MaxY: 1},
	} {
		if aerr := r.Validate(); aerr == nil || aerr.Code != CodeInvalidArgument {
			t.Errorf("%s: error %+v, want invalid_argument", name, aerr)
		}
	}
}

func TestErrorModel(t *testing.T) {
	// Errorf + errors.As round trip
	err := func() error { return Errorf(CodeNotFound, "no trajectory %d", 7) }()
	var ae *Error
	if !errors.As(err, &ae) || ae.Code != CodeNotFound {
		t.Fatalf("errors.As failed on %v", err)
	}

	// FromError mapping
	if FromError(nil) != nil {
		t.Fatal("FromError(nil) != nil")
	}
	if got := FromError(context.DeadlineExceeded); got.Code != CodeTimeout {
		t.Fatalf("deadline maps to %q, want timeout", got.Code)
	}
	if got := FromError(context.Canceled); got.Code != CodeCanceled {
		t.Fatalf("cancel maps to %q, want canceled", got.Code)
	}
	if got := FromError(errors.New("boom")); got.Code != CodeInternal {
		t.Fatalf("opaque error maps to %q, want internal", got.Code)
	}
	if got := FromError(ae); got != ae {
		t.Fatal("typed error did not pass through FromError")
	}

	// HTTP status mapping
	statuses := map[Code]int{
		CodeInvalidArgument: http.StatusBadRequest,
		CodeNotFound:        http.StatusNotFound,
		CodeTimeout:         http.StatusGatewayTimeout,
		CodeCanceled:        499,
		CodeOverloaded:      http.StatusServiceUnavailable,
		CodeTooLarge:        http.StatusRequestEntityTooLarge,
		CodeInternal:        http.StatusInternalServerError,
		Code("mystery"):     http.StatusInternalServerError,
	}
	for code, want := range statuses {
		if got := (&Error{Code: code}).HTTPStatus(); got != want {
			t.Errorf("%s: status %d, want %d", code, got, want)
		}
	}

	// the wire envelope shape clients and tests rely on
	buf, _ := json.Marshal(ErrorResponse{Err: Error{Code: CodeTimeout, Message: "too slow"}})
	want := `{"error":{"code":"timeout","message":"too slow"}}`
	if string(buf) != want+"\n" && string(buf) != want {
		t.Fatalf("envelope %s, want %s", buf, want)
	}
}

func TestSpecDefaults(t *testing.T) {
	s := QuerySpec{}.WithDefaults()
	if s.Measure != DefaultMeasure || s.Algorithm != DefaultTopKAlgorithm {
		t.Fatalf("defaults %q/%q", s.Measure, s.Algorithm)
	}
	s = QuerySpec{Measure: "frechet", Algorithm: "exacts"}.WithDefaults()
	if s.Measure != "frechet" || s.Algorithm != "exacts" {
		t.Fatalf("explicit names overwritten: %q/%q", s.Measure, s.Algorithm)
	}
}

// TestStreamEventShape pins the NDJSON record discriminants: exactly one
// of match/summary/error is present per record.
func TestStreamEventShape(t *testing.T) {
	m := Match{TrajID: 3, Start: 1, End: 4, Dist: 0.5, Sim: 1 / 1.5}
	buf, _ := json.Marshal(StreamEvent{Match: &m})
	var ev StreamEvent
	if err := json.Unmarshal(buf, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Match == nil || ev.Summary != nil || ev.Error != nil {
		t.Fatalf("match record decoded as %+v", ev)
	}
	if *ev.Match != m {
		t.Fatalf("match round trip: %+v != %+v", *ev.Match, m)
	}
}
