package api

import (
	"context"
	"errors"
	"fmt"
	"net/http"
)

// Code is a machine-readable error class. Clients should branch on codes,
// never on message text.
type Code string

// Error codes. The set may grow; unrecognized codes should be treated as
// CodeInternal.
const (
	// CodeInvalidArgument: the request is malformed — bad JSON, empty or
	// non-finite trajectories, non-positive or oversized k, unknown
	// measure/algorithm names, inapplicable parameters.
	CodeInvalidArgument Code = "invalid_argument"
	// CodeNotFound: the referenced resource (e.g. a trajectory ID) does
	// not exist.
	CodeNotFound Code = "not_found"
	// CodeTimeout: the search exceeded its deadline.
	CodeTimeout Code = "timeout"
	// CodeDeadlineExceeded: the server predicted the request cannot finish
	// within its remaining deadline budget (including the reserve held back
	// for merging and serialization) and rejected it EARLY, before it could
	// burn a worker slot only to time out. Unlike CodeTimeout no work was
	// wasted; the caller should retry with a larger budget, or opt into
	// degraded answers (QuerySpec.AllowDegraded).
	CodeDeadlineExceeded Code = "deadline_exceeded"
	// CodeCanceled: the caller went away before the search finished.
	CodeCanceled Code = "canceled"
	// CodeOverloaded: the server refused the work because a capacity bound
	// (e.g. the pairwise-search slot pool) is saturated.
	CodeOverloaded Code = "overloaded"
	// CodeTooLarge: the request body exceeds the server's size limit.
	CodeTooLarge Code = "too_large"
	// CodeInternal: an unexpected server-side failure.
	CodeInternal Code = "internal"
)

// Error is the typed error carried on the wire and returned by every layer
// of the query API. It satisfies the error interface, so it flows through
// ordinary Go error returns and errors.As.
type Error struct {
	Code    Code   `json:"code"`
	Message string `json:"message"`
	// RetryAfterMS, set on overloaded errors, is the server's estimate of
	// when retrying is worth it, derived from its observed queue drain
	// rate. HTTP layers mirror it as a Retry-After header; client.WithRetry
	// honors it (capped against the caller's context deadline).
	RetryAfterMS int `json:"retry_after_ms,omitempty"`
}

// Error implements the error interface.
func (e *Error) Error() string { return string(e.Code) + ": " + e.Message }

// Errorf builds a typed error.
func Errorf(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// FromError coerces an arbitrary error into a typed *Error: typed errors
// pass through unchanged (including wrapped ones), context expiry maps to
// CodeTimeout/CodeCanceled, and anything else is CodeInternal. A nil error
// maps to nil.
func FromError(err error) *Error {
	var ae *Error
	switch {
	case err == nil:
		return nil
	case errors.As(err, &ae):
		return ae
	case errors.Is(err, context.DeadlineExceeded):
		return Errorf(CodeTimeout, "%v", err)
	case errors.Is(err, context.Canceled):
		return Errorf(CodeCanceled, "%v", err)
	default:
		return Errorf(CodeInternal, "%v", err)
	}
}

// HTTPStatus maps the error to its HTTP response status. 499 is the nginx
// client-closed-request convention (net/http cannot actually deliver it to
// the disconnected client, but it keeps logs truthful).
func (e *Error) HTTPStatus() int {
	switch e.Code {
	case CodeInvalidArgument:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeTimeout, CodeDeadlineExceeded:
		return http.StatusGatewayTimeout
	case CodeCanceled:
		return 499
	case CodeOverloaded:
		return http.StatusServiceUnavailable
	case CodeTooLarge:
		return http.StatusRequestEntityTooLarge
	default:
		return http.StatusInternalServerError
	}
}

// ErrorResponse is the JSON envelope every endpoint uses for top-level
// errors: {"error": {"code": "...", "message": "..."}}.
type ErrorResponse struct {
	Err Error `json:"error"`
}
