// Package api defines the versioned wire types of the simsub query API:
// the JSON request/response shapes spoken by the HTTP server
// (internal/server), the HTTP client (package client) and the in-process
// engine facade (internal/engine), plus the typed error model shared by
// all three.
//
// One set of types, many front ends: the v2 endpoints (POST /v2/query,
// POST /v2/query/stream, GET /v2/trajectories/{id}) consume these types
// directly, the legacy /v1 endpoints adapt onto them, and the Searcher
// interface lets a program swap an in-process *engine.Engine for a remote
// *client.Client without touching call sites.
package api

import (
	"context"

	"simsub/internal/geo"
	"simsub/internal/traj"
)

// Version is the current wire version. The /v1 endpoints remain available
// as a thin compatibility adapter over the same query core.
const Version = "v2"

// Defaults applied when a spec omits the field. K has no default: a spec
// must say how many matches it wants.
const (
	// DefaultMeasure is used when QuerySpec.Measure is empty.
	DefaultMeasure = "dtw"
	// DefaultTopKAlgorithm is used when QuerySpec.Algorithm is empty.
	DefaultTopKAlgorithm = "pss"
	// DefaultSearchAlgorithm is the /v1/search default (exact pairwise).
	DefaultSearchAlgorithm = "exacts"
	// DefaultANNProbes is the multi-probe width used when an ANNSpec omits
	// probes.
	DefaultANNProbes = 2
)

// Trajectory is the wire form of a trajectory: points are [x, y] pairs or
// [x, y, t] triples; a missing t defaults to the point's index. IDs are
// always server-assigned (returned by the load response), so the wire form
// deliberately has no id field.
type Trajectory struct {
	Points [][]float64 `json:"points"`
}

// FromTraj converts an engine trajectory to wire form.
func FromTraj(t traj.Trajectory) Trajectory {
	pts := make([][]float64, t.Len())
	for i, p := range t.Points {
		pts[i] = []float64{p.X, p.Y, p.T}
	}
	return Trajectory{Points: pts}
}

// Rect is the wire form of an axis-aligned rectangle, used as the spatial
// filter of a QuerySpec.
type Rect struct {
	MinX float64 `json:"min_x"`
	MinY float64 `json:"min_y"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
}

// Geo converts the wire rectangle to the engine's geometry type.
func (r Rect) Geo() geo.Rect {
	return geo.Rect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
}

// QuerySpec is one top-k request against the store: what to search for,
// under which measure and algorithm (with optional per-query parameters),
// over which spatial region, and which page of the ranking to return.
type QuerySpec struct {
	// Query is the query trajectory. Required, non-empty, finite.
	Query Trajectory `json:"query"`
	// K is the ranking size. Required: it must be positive and no larger
	// than the store.
	K int `json:"k"`
	// Measure names a registered similarity measure (default "dtw").
	Measure string `json:"measure,omitempty"`
	// Algorithm names a search algorithm (default "pss"). The learned
	// approximate searches "rls" and "rls-skip" additionally require a
	// policy registered on the server (simsubd -policy or
	// POST /v2/admin/policy); without one they fail as invalid_argument.
	Algorithm string `json:"algorithm,omitempty"`

	// EDREps overrides the EDR matching tolerance (measure "edr" only).
	EDREps float64 `json:"edr_eps,omitempty"`
	// LCSSEps overrides the LCSS matching tolerance (measure "lcss" only).
	LCSSEps float64 `json:"lcss_eps,omitempty"`
	// CDTWBand overrides the relative Sakoe-Chiba band width in (0, 1]
	// (measure "cdtw" only).
	CDTWBand float64 `json:"cdtw_band,omitempty"`
	// POSDelay overrides the POS-D split delay (algorithm "pos-d" only).
	POSDelay int `json:"pos_delay,omitempty"`

	// Bound, when set, is a trusted upper bound on the ranking's final
	// k-th-best distance: the server seeds its shared best-so-far
	// threshold from it, so candidates provably farther than the bound
	// are pruned before the local ranking fills. All pruning comparisons
	// are strict, so matches at exactly the bound survive, but matches
	// strictly beyond it may be omitted from the answer — callers must
	// only pass bounds that make such matches irrelevant. This is the
	// threshold-propagation channel of the distributed coordinator
	// (simsubrouter), which ships its running global k-th-best to remote
	// shards so they prune like local ones. Must be finite and
	// non-negative.
	Bound *float64 `json:"bound,omitempty"`

	// AllowDegraded opts this spec into graceful degradation: when the
	// server cannot run the requested algorithm within the spec's deadline
	// budget, or is shedding its cost class under overload, it may answer
	// with a cheaper algorithm (ExactS falls back to PSS, then to the
	// compiled learned policy when one is serving) instead of rejecting.
	// A degraded answer is always explicitly marked (QueryResult.Degraded /
	// StreamSummary.Degraded); without this opt-in the server never
	// substitutes algorithms.
	AllowDegraded bool `json:"allow_degraded,omitempty"`

	// ANN, when set, swaps candidate generation from the exhaustive
	// spatial enumeration to an approximate embedding prefilter: the
	// server's per-shard LSH index proposes about Candidates trajectories
	// by embedding distance and the requested measure/algorithm reranks
	// only those, exactly. Retained matches carry distances byte-identical
	// to scoring the same candidates without the prefilter; the only
	// approximation is that a true top-k member absent from the candidate
	// set is missed. Requires an encoder registered on the server
	// (simsubd -encoder or POST /v2/admin/encoder); without one the spec
	// fails as invalid_argument.
	ANN *ANNSpec `json:"ann,omitempty"`

	// Filter, when set, restricts the search to trajectories whose MBR
	// intersects it; the restriction is pushed down to the per-shard
	// indexes.
	Filter *Rect `json:"filter,omitempty"`
	// Distinct collapses matches whose matched subtrajectories have
	// identical points (duplicate loads of the same data), keeping the
	// best-ranked representative; the answer may then hold fewer than K
	// matches.
	Distinct bool `json:"distinct,omitempty"`
	// Offset skips the first Offset matches of the ranking.
	Offset int `json:"offset,omitempty"`
	// Limit caps the number of returned matches (0 = to the end).
	Limit int `json:"limit,omitempty"`
}

// ANNSpec tunes the approximate candidate prefilter (QuerySpec.ANN).
type ANNSpec struct {
	// Candidates is the total candidate budget: the prefilter proposes
	// about this many trajectories for exact reranking. Required,
	// positive. Larger budgets raise recall and cost.
	Candidates int `json:"candidates"`
	// Probes is the multi-probe width per LSH table (default
	// DefaultANNProbes): 1 visits only each table's home bucket, higher
	// values add the nearest perturbed buckets, raising recall at slightly
	// higher index cost.
	Probes int `json:"probes,omitempty"`
}

// Query is the body of POST /v2/query: a batch of specs executed
// concurrently against one store snapshot per spec, answered with one
// QueryResult per spec in order.
type Query struct {
	Specs []QuerySpec `json:"specs"`
	// TimeoutMS bounds the whole batch (capped by the server's MaxTimeout).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// StreamQuery is the body of POST /v2/query/stream: a single spec whose
// matches are delivered incrementally as NDJSON StreamEvent records.
type StreamQuery struct {
	Spec QuerySpec `json:"spec"`
	// TimeoutMS bounds the search (capped by the server's MaxTimeout).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// Match is one ranked answer: the matched subtrajectory
// [Start, End] (0-based, inclusive) of the stored trajectory TrajID.
type Match struct {
	TrajID   int     `json:"traj_id"`
	Start    int     `json:"start"`
	End      int     `json:"end"`
	Dist     float64 `json:"dist"`
	Sim      float64 `json:"sim"`
	Explored int     `json:"explored"`
}

// QueryResult is the outcome of one spec of a batch: either an error or a
// page of the ranking. A failed spec does not fail its batch.
type QueryResult struct {
	// Matches is the requested page of the ranking, ascending by distance.
	Matches []Match `json:"matches"`
	// Total is the size of the full ranking before offset/limit paging.
	Total int `json:"total"`
	// Cached reports whether the ranking came from the engine's LRU.
	Cached bool `json:"cached"`
	// Error is set when the spec failed; Matches is then empty.
	Error *Error `json:"error,omitempty"`
	// Partial, set only by the distributed coordinator, reports that one
	// or more shard nodes could not be reached: Matches is then the exact
	// ranking over the reachable portion of the corpus rather than an
	// error. Single-node servers never set it.
	Partial *Partial `json:"partial,omitempty"`
	// Degraded reports that the server substituted a cheaper algorithm
	// for the requested one. Set only when the spec opted in via
	// AllowDegraded; never on an exact answer.
	Degraded *Degraded `json:"degraded,omitempty"`
	// TookMS is the spec's wall-clock search time.
	TookMS float64 `json:"took_ms"`
}

// Degradation reasons (Degraded.Reason).
const (
	// DegradedBudget: the requested algorithm could not finish within the
	// spec's remaining deadline budget.
	DegradedBudget = "budget"
	// DegradedOverload: admission control was shedding the requested
	// algorithm's cost class.
	DegradedOverload = "overload"
)

// Degraded is the typed marker of a gracefully degraded answer: the server
// ran a cheaper algorithm than requested because the spec opted in
// (QuerySpec.AllowDegraded) and the requested one would have been rejected.
// The ranking is the substitute algorithm's honest answer — exact for PSS,
// approximate for a learned policy — never a silently truncated one.
type Degraded struct {
	// Reason says why the server degraded (DegradedBudget,
	// DegradedOverload).
	Reason string `json:"reason"`
	// From is the requested algorithm.
	From string `json:"from"`
	// To is the algorithm that actually answered.
	To string `json:"to"`
}

// Partial is the typed degradation summary of a scatter-gather answer: the
// coordinator could not reach every shard node, so the ranking covers only
// the trajectories placed on the nodes that answered. Callers that require
// complete answers should treat a non-nil Partial as a retryable failure;
// callers that prefer availability can use the matches as-is.
type Partial struct {
	// NodesTotal is the number of shard groups the query was scattered to.
	NodesTotal int `json:"nodes_total"`
	// NodesFailed is how many of them yielded no answer.
	NodesFailed int `json:"nodes_failed"`
	// Failures carries one typed cause per failed group.
	Failures []NodeFailure `json:"failures"`
}

// NodeFailure is one failed shard node of a degraded scatter-gather.
type NodeFailure struct {
	// Node is the failed node's base URL.
	Node string `json:"node"`
	// Err is the typed cause (timeout, overloaded, internal, ...).
	Err Error `json:"error"`
}

// QueryResponse answers POST /v2/query: Results[i] belongs to Specs[i].
type QueryResponse struct {
	Results []QueryResult `json:"results"`
	TookMS  float64       `json:"took_ms"`
}

// StreamEvent is one NDJSON record of POST /v2/query/stream. Exactly one
// field is set: Match records arrive as soon as a match enters the running
// top-k (so early answers stream out while the scan continues), the final
// record carries either the Summary or, after a mid-stream failure, the
// Error.
type StreamEvent struct {
	Match   *Match         `json:"match,omitempty"`
	Summary *StreamSummary `json:"summary,omitempty"`
	Error   *Error         `json:"error,omitempty"`
}

// StreamSummary is the trailing record of a match stream. Matches is the
// final ranking (after distinct collapsing and paging) and is
// authoritative: the incremental Match records are provisional — a match
// streamed early may be absent from the final ranking if better answers
// displaced it.
type StreamSummary struct {
	Matches []Match `json:"matches"`
	Total   int     `json:"total"`
	Cached  bool    `json:"cached"`
	// Emitted counts the provisional match records that preceded the
	// summary.
	Emitted int `json:"emitted"`
	// Partial reports coordinator-level degradation (see
	// QueryResult.Partial); single-node servers never set it.
	Partial *Partial `json:"partial,omitempty"`
	// Degraded reports algorithm substitution (see QueryResult.Degraded);
	// set only when the spec opted in via AllowDegraded.
	Degraded *Degraded `json:"degraded,omitempty"`
	TookMS   float64   `json:"took_ms"`
}

// LoadRequest is the body of POST /v1/trajectories.
type LoadRequest struct {
	Trajectories []Trajectory `json:"trajectories"`
}

// LoadResponse answers a bulk load with the server-assigned global IDs, in
// request order.
type LoadResponse struct {
	Loaded int   `json:"loaded"`
	IDs    []int `json:"ids"`
	Total  int   `json:"total"`
}

// BulkLoadResponse answers POST /v2/load/stream. Streamed loads at
// 100k–1M records do not echo per-record IDs like LoadResponse: they are
// dense, so FirstID and Loaded determine all of them.
type BulkLoadResponse struct {
	// Loaded is the number of trajectories ingested from the stream.
	Loaded int `json:"loaded"`
	// FirstID is the global ID of the first streamed trajectory; IDs run
	// dense through FirstID+Loaded-1.
	FirstID int `json:"first_id"`
	// Total is the store size after the load.
	Total int `json:"total"`
	// TookMS is the server-side ingest wall-clock in milliseconds.
	TookMS float64 `json:"took_ms"`
}

// RecoveryInfo reports what a node's boot-time crash recovery did (see
// StatsResponse.Recovery); all counters are zero for a node started
// without a data directory.
type RecoveryInfo struct {
	// Segments is the number of log segment files read.
	Segments int `json:"segments"`
	// Records is the number of trajectory records recovered.
	Records int `json:"records"`
	// SnapshotRecords had their derived metadata restored from a snapshot.
	SnapshotRecords int `json:"snapshot_records"`
	// Replayed had their derived metadata re-computed from the log tail.
	Replayed int `json:"replayed"`
	// TornTailTruncations counts partial tail records truncated on boot.
	TornTailTruncations int `json:"torn_tail_truncations"`
	// SnapshotsDiscarded counts snapshot files that failed validation.
	SnapshotsDiscarded int `json:"snapshots_discarded"`
	// WallMS is the recovery wall-clock in milliseconds.
	WallMS float64 `json:"wall_ms"`
}

// Node serving states reported in StatsResponse.State / NodeStats.State.
const (
	// StateReady: the node serves queries and loads.
	StateReady = "ready"
	// StateRecovering: the node is replaying its log and rejects queries
	// and loads with code overloaded until recovery completes.
	StateRecovering = "recovering"
)

// TrajectoryRecord answers GET /v2/trajectories/{id}.
type TrajectoryRecord struct {
	ID         int        `json:"id"`
	Trajectory Trajectory `json:"trajectory"`
}

// Stats is the wire form of the engine counters.
type Stats struct {
	Trajectories int   `json:"trajectories"`
	Points       int   `json:"points"`
	Shards       int   `json:"shards"`
	Workers      int   `json:"workers"`
	Queries      int64 `json:"queries"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheEntries int   `json:"cache_entries"`
	InFlight     int64 `json:"in_flight"`
	// Pruning effectiveness of the threshold pipeline, cumulative across
	// served scans: candidates considered after index/filter pruning, those
	// dropped by the lower-bound cascade before any DP ran, and those whose
	// search was abandoned against the running k-th-best distance. The
	// remainder (CandidatesSeen - LBSkipped - EarlyAbandoned) were scored
	// in full. Cache hits perform no scan and advance no counter.
	CandidatesSeen int64 `json:"candidates_seen"`
	LBSkipped      int64 `json:"lb_skipped"`
	EarlyAbandoned int64 `json:"early_abandoned"`
	// Learned-search serving state: whether a policy is registered, its
	// algorithm name and content fingerprint, and how many queries the
	// learned searches have answered. The PolicyCompile* fields describe
	// the compiled table policy when one is serving (policy-compile): its
	// per-dimension grid resolution, the action-divergence rate measured
	// against the source network at compile time, and the table's own
	// content hash, which the serving PolicyFingerprint folds in.
	PolicyLoaded              bool    `json:"policy_loaded"`
	PolicyName                string  `json:"policy_name,omitempty"`
	PolicyFingerprint         string  `json:"policy_fingerprint,omitempty"`
	PolicyCompiled            bool    `json:"policy_compiled,omitempty"`
	PolicyCompileResolution   int     `json:"policy_compile_resolution,omitempty"`
	PolicyCompileDivergence   float64 `json:"policy_compile_divergence,omitempty"`
	PolicyCompiledFingerprint string  `json:"policy_compiled_fingerprint,omitempty"`
	RLSQueries                int64   `json:"rls_queries"`
	// Sampled serving-quality aggregates of the learned searches (enabled
	// by the engine's QualitySample knob; all zero while no query has been
	// sampled): the mean approximation ratio of sampled rankings against
	// the exact ranking (0 while every sampled position had a 0-distance
	// exact answer, where the ratio is undefined), the mean 1-based rank
	// of their trajectories within it (absent trajectories counting as
	// k+1), and the mean fraction of data points skip policies never
	// scanned.
	QualitySamples  int64   `json:"quality_samples"`
	ApproxRatio     float64 `json:"approx_ratio"`
	MeanRank        float64 `json:"mean_rank"`
	SkippedFraction float64 `json:"skipped_fraction"`

	// Embedding serving state: whether a trajectory encoder is registered
	// (enabling the "embed" algorithm and the ann prefilter), its
	// dimensionality / token grid / content fingerprint, how many queries
	// used the ann prefilter, and the sampled recall telemetry — for a
	// sampled fraction of ann-prefiltered queries the server reruns the
	// same search over the exhaustive candidate set and records the top-k
	// overlap (recall@k); MeanRecall is the lifetime mean of those samples
	// (0 while none was taken).
	EncoderLoaded      bool    `json:"encoder_loaded"`
	EncoderFingerprint string  `json:"encoder_fingerprint,omitempty"`
	EncoderDim         int     `json:"encoder_dim,omitempty"`
	EncoderGrid        int     `json:"encoder_grid,omitempty"`
	ANNQueries         int64   `json:"ann_queries"`
	RecallSamples      int64   `json:"recall_samples"`
	MeanRecall         float64 `json:"mean_recall"`

	// Overload-resilience counters: queries rejected by adaptive admission
	// control (Shed, of which ShedExpensive were unbounded exact scans or
	// stream loads — the classes shed first), queries rejected early
	// because their deadline budget could not cover the predicted scan
	// (DeadlineRejects), and queries answered by a cheaper algorithm under
	// the AllowDegraded opt-in (DegradedQueries). QueueDepth and
	// QueueWaitMS describe the admission queue right now (current waiters,
	// smoothed queue wait); Shedding reports whether admission is currently
	// in its shedding state.
	Shed            int64   `json:"shed"`
	ShedExpensive   int64   `json:"shed_expensive"`
	DeadlineRejects int64   `json:"deadline_rejects"`
	DegradedQueries int64   `json:"degraded_queries"`
	QueueDepth      int64   `json:"queue_depth"`
	QueueWaitMS     float64 `json:"queue_wait_ms"`
	Shedding        bool    `json:"shedding,omitempty"`
}

// PolicySwapRequest is the body of POST /v2/admin/policy: exactly one of
// Path (a server-local policy file, for operators colocated with the
// daemon) or PolicyB64 (the policy file's bytes, base64, for remote
// admin) must be set. CompileResolution > 0 additionally compiles the
// policy onto a dense action-lookup table at that per-dimension grid
// resolution before it serves (the O(1) table path); 0 serves the network
// directly. The new policy is validated (and compiled) before it replaces
// the old one; a rejected swap leaves the previous registration serving.
type PolicySwapRequest struct {
	Path              string `json:"path,omitempty"`
	PolicyB64         string `json:"policy_b64,omitempty"`
	CompileResolution int    `json:"compile_resolution,omitempty"`
}

// PolicyInfo answers GET and POST /v2/admin/policy: the registered
// policy's algorithm name ("RLS", "RLS-Skip" or "RLS-Skip+"), MDP shape
// and content fingerprint, plus the compiled-table descriptors when the
// table path is serving (see the PolicyCompile* fields of Stats).
type PolicyInfo struct {
	Name                string  `json:"name"`
	K                   int     `json:"k"`
	UseSuffix           bool    `json:"use_suffix"`
	SimplifyState       bool    `json:"simplify_state"`
	Fingerprint         string  `json:"fingerprint"`
	Compiled            bool    `json:"compiled,omitempty"`
	CompileResolution   int     `json:"compile_resolution,omitempty"`
	CompileDivergence   float64 `json:"compile_divergence,omitempty"`
	CompiledFingerprint string  `json:"compiled_fingerprint,omitempty"`
}

// EncoderSwapRequest is the body of POST /v2/admin/encoder: exactly one of
// Path (a server-local encoder file, for operators colocated with the
// daemon) or EncoderB64 (the encoder file's bytes, base64, for remote
// admin and the coordinator's broadcast) must be set. The new encoder is
// validated before it replaces the old one; a rejected swap leaves the
// previous registration serving. A successful swap re-embeds the stored
// corpus, rebuilds the per-shard ANN indexes and purges the result cache.
type EncoderSwapRequest struct {
	Path       string `json:"path,omitempty"`
	EncoderB64 string `json:"encoder_b64,omitempty"`
}

// EncoderInfo answers GET and POST /v2/admin/encoder: the registered
// trajectory encoder's embedding dimensionality, token-grid resolution
// (0 for coordinate-input encoders) and content fingerprint. The
// coordinator verifies fleet-wide fingerprint agreement after a broadcast
// swap.
type EncoderInfo struct {
	Dim         int    `json:"dim"`
	Grid        int    `json:"grid,omitempty"`
	Fingerprint string `json:"fingerprint"`
}

// StatsResponse answers GET /v1/stats and GET /v2/stats.
type StatsResponse struct {
	Engine        Stats    `json:"engine"`
	UptimeSeconds float64  `json:"uptime_seconds"`
	Goroutines    int      `json:"goroutines"`
	Measures      []string `json:"measures"`
	// Router is set only by the distributed coordinator (simsubrouter):
	// per-node health/latency and fleet-level hedge/retry/degradation
	// counters. Single-node servers omit it; Engine then aggregates the
	// reachable nodes' counters.
	Router *RouterStats `json:"router,omitempty"`
	// State is the node's serving state ("ready" or "recovering"); empty
	// from servers predating persistence.
	State string `json:"state,omitempty"`
	// Recovery describes the node's boot-time crash recovery. Only set by
	// nodes running with a data directory.
	Recovery *RecoveryInfo `json:"recovery,omitempty"`
}

// RouterStats is the coordinator tier's own telemetry: how the fleet is
// behaving as seen from the front door.
type RouterStats struct {
	// Groups is the number of replica groups trajectories are placed on.
	Groups int `json:"groups"`
	// Replication is the number of nodes holding each trajectory.
	Replication int `json:"replication"`
	// Trajectories is the number of trajectories the router has placed.
	Trajectories int `json:"trajectories"`
	// Queries counts top-k specs answered by the router.
	Queries int64 `json:"queries"`
	// Hedges counts hedged replica requests launched after a node's
	// latency-quantile delay expired.
	Hedges int64 `json:"hedges"`
	// Retries counts per-node request retries (backoff on overload or
	// transient network failure).
	Retries int64 `json:"retries"`
	// PartialResults counts answers served with a Partial degradation
	// summary because at least one shard group was unreachable.
	PartialResults int64 `json:"partial_results"`
	// BoundsPropagated counts scatter waves that shipped a running
	// k-th-best bound to remote shards.
	BoundsPropagated int64 `json:"bounds_propagated"`
	// DeadlineRejects counts requests the router rejected before any
	// scatter because their remaining deadline budget was already inside
	// the router's merge reserve.
	DeadlineRejects int64 `json:"deadline_rejects"`
	// Nodes holds one entry per backend node, in configuration order.
	Nodes []NodeStats `json:"nodes"`
}

// NodeStats is the router's view of one backend simsubd node.
type NodeStats struct {
	// Node is the node's base URL.
	Node string `json:"node"`
	// Group is the replica group the node belongs to.
	Group int `json:"group"`
	// Healthy reports whether the node's latest contact succeeded.
	Healthy bool `json:"healthy"`
	// Requests counts requests sent to the node (including hedges).
	Requests int64 `json:"requests"`
	// Failures counts requests that exhausted their retries.
	Failures int64 `json:"failures"`
	// Hedges counts hedge requests this node received.
	Hedges int64 `json:"hedges"`
	// Retries counts retry attempts against this node.
	Retries int64 `json:"retries"`
	// RTTMeanMS / RTTP50MS / RTTP95MS summarize the node's recent
	// round-trip times in milliseconds (0 until a request completes).
	RTTMeanMS float64 `json:"rtt_mean_ms"`
	RTTP50MS  float64 `json:"rtt_p50_ms"`
	RTTP95MS  float64 `json:"rtt_p95_ms"`
	// State is the node's self-reported serving state ("ready",
	// "recovering") or "unreachable" when its stats could not be fetched.
	// The router fails over instead of scatter-gathering against a node
	// still replaying its log.
	State string `json:"state,omitempty"`
	// Breaker is the node's circuit-breaker state as seen by the router:
	// "closed" (healthy), "open" (ejected after consecutive failures — the
	// router skips it until the cooldown expires) or "half-open" (one
	// probe in flight deciding whether to close again).
	Breaker string `json:"breaker,omitempty"`
	// BreakerOpens counts how many times the node's breaker has tripped
	// open.
	BreakerOpens int64 `json:"breaker_opens"`
}

// FailpointInfo is one armed fault-injection site, as listed by
// GET /v2/admin/failpoints.
type FailpointInfo struct {
	// Name is the fault site (e.g. "storage/append", "router/transport").
	Name string `json:"name"`
	// Spec is the armed spec in the failpoint grammar (e.g.
	// "3*sleep(50ms)", "error(disk gone)").
	Spec string `json:"spec"`
	// Hits counts evaluations that triggered the fault so far.
	Hits int `json:"hits"`
}

// FailpointsRequest is the body of POST /v2/admin/failpoints: set Name and
// Spec to arm (or, with spec "off", disarm) one site, or ClearAll to
// disarm everything. The endpoint only exists on servers started with
// fault injection explicitly enabled.
type FailpointsRequest struct {
	Name     string `json:"name,omitempty"`
	Spec     string `json:"spec,omitempty"`
	ClearAll bool   `json:"clear_all,omitempty"`
}

// FailpointsResponse answers GET and POST /v2/admin/failpoints with every
// currently armed site.
type FailpointsResponse struct {
	Failpoints []FailpointInfo `json:"failpoints"`
}

// Searcher answers batched v2 queries. Both the in-process *engine.Engine
// and the remote *client.Client satisfy it, so a program can swap local
// and remote search without code changes.
type Searcher interface {
	Query(ctx context.Context, req Query) (*QueryResponse, error)
}

// StreamSearcher additionally delivers one spec's matches incrementally:
// emit is called for every provisional match in ranking-entry order, then
// the summary returns the authoritative final ranking.
type StreamSearcher interface {
	Searcher
	QueryStream(ctx context.Context, spec QuerySpec, emit func(Match) error) (*StreamSummary, error)
}
