package api

// This file is the single registration table of the query surface's
// algorithm names: which algorithms exist, their accepted alternate
// spellings, which measure they are pinned to (if any), which per-query
// parameter is theirs, and whether they bind server-side registered state
// (a learned policy, a trajectory encoder). Engine resolution, server
// routes and client-side validation all consult this table, so adding an
// algorithm — or pinning one to a new measure — is one edit here plus its
// implementation, instead of a hunt through per-layer name switches.
// Measure names themselves stay dynamic (the sim registry): a new measure
// registers itself and needs no entry here unless an algorithm is pinned
// to it.

// AlgorithmInfo describes one search algorithm accepted on the wire.
type AlgorithmInfo struct {
	// Name is the canonical lower-case algorithm name.
	Name string
	// Aliases are alternate accepted spellings, normalized to Name.
	Aliases []string
	// Measure, when non-empty, pins the algorithm to that single measure:
	// pairing it with any other is an invalid_argument, never a silently
	// mislabeled distance.
	Measure string
	// Param, when non-empty, names the only per-query parameter scoped to
	// this algorithm.
	Param string
	// NeedsPolicy marks the learned searches, which bind a policy
	// registered on the serving engine (-policy / POST /v2/admin/policy).
	NeedsPolicy bool
	// NeedsEncoder marks embedding ranking, which binds an encoder
	// registered on the serving engine (-encoder / POST /v2/admin/encoder).
	NeedsEncoder bool
}

// algorithms is the registration table. Order is the documentation order.
var algorithms = []AlgorithmInfo{
	{Name: "exacts"},
	{Name: "sizes"},
	{Name: "pss"},
	{Name: "pos"},
	{Name: "pos-d", Aliases: []string{"posd"}, Param: "pos_delay"},
	{Name: "spring", Measure: "dtw"},
	{Name: "ucr", Measure: "dtw"},
	{Name: "random-s", Aliases: []string{"randoms"}},
	{Name: "simtra"},
	{Name: "rls", NeedsPolicy: true},
	{Name: "rls-skip", NeedsPolicy: true},
	{Name: "embed", Measure: "t2vec", NeedsEncoder: true},
}

// MeasureParams maps each per-query measure parameter to the only measure
// it applies to; setting one under any other measure is rejected.
var MeasureParams = map[string]string{
	"edr_eps":   "edr",
	"lcss_eps":  "lcss",
	"cdtw_band": "cdtw",
}

// Algorithms returns the registration table (a copy).
func Algorithms() []AlgorithmInfo {
	out := make([]AlgorithmInfo, len(algorithms))
	copy(out, algorithms)
	return out
}

// AlgorithmNames returns the canonical algorithm names in table order.
func AlgorithmNames() []string {
	out := make([]string, len(algorithms))
	for i, a := range algorithms {
		out[i] = a.Name
	}
	return out
}

// LookupAlgorithm resolves a wire algorithm name (canonical or alias) to
// its table entry.
func LookupAlgorithm(name string) (AlgorithmInfo, bool) {
	for _, a := range algorithms {
		if a.Name == name {
			return a, true
		}
		for _, alias := range a.Aliases {
			if alias == name {
				return a, true
			}
		}
	}
	return AlgorithmInfo{}, false
}

// CheckAlgorithm validates an algorithm name against the table and its
// measure pinning, returning the entry on success. It does NOT check that
// the measure itself exists — measure names are dynamic (the sim
// registry) and the serving engine rejects unknown ones.
func CheckAlgorithm(measure, algorithm string) (AlgorithmInfo, *Error) {
	info, ok := LookupAlgorithm(algorithm)
	if !ok {
		return AlgorithmInfo{}, Errorf(CodeInvalidArgument, "unknown algorithm %q", algorithm)
	}
	if info.Measure != "" && measure != info.Measure {
		return AlgorithmInfo{}, Errorf(CodeInvalidArgument,
			"algorithm %q is specific to measure %q and ignores measure %q; use measure %q",
			algorithm, info.Measure, measure, info.Measure)
	}
	return info, nil
}
