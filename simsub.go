// Package simsub is a Go implementation of similar subtrajectory search
// (the SimSub problem): given a data trajectory T and a query trajectory Tq,
// find the contiguous portion of T most similar to Tq under an abstract
// trajectory similarity measure.
//
// It reproduces "Efficient and Effective Similar Subtrajectory Search with
// Deep Reinforcement Learning" (Wang, Long, Cong, Liu; PVLDB 2020),
// including the exact algorithm ExactS, the size-restricted SizeS, the
// splitting heuristics PSS/POS/POS-D, the deep-reinforcement-learning
// searches RLS and RLS-Skip, the competitor methods Spring, UCR and
// Random-S, three similarity measures (DTW, discrete Fréchet and a
// t2vec-style learned measure) plus extension measures (ERP, EDR, LCSS,
// EDS, EDwP), an R-tree database index and the paper's full experiment
// harness. Beyond the reproduction, a sharded concurrent serving layer
// (Engine, exposed over HTTP by cmd/simsubd) answers top-k queries under
// heavy traffic. See DESIGN.md for the system inventory and architecture;
// the experiment harness reproducing the paper's tables is cmd/experiments
// (run it with -help for the knobs).
//
// # Quick start
//
//	data := simsub.FromXY(0,0, 1,0, 2,0, 3,1, 4,2)
//	query := simsub.FromXY(2,0, 3,1)
//	res := simsub.Exact(simsub.DTW()).Search(data, query)
//	fmt.Println(res.Interval, res.Dist) // the most similar subtrajectory
//
// For database-scale search, build a Database (optionally R-tree indexed)
// and call TopK. For the learned searches, train a policy with TrainPolicy
// and wrap it with RL.
package simsub

import (
	"math/rand"

	"simsub/api"
	"simsub/client"
	"simsub/internal/core"
	"simsub/internal/engine"
	"simsub/internal/geo"
	"simsub/internal/rl"
	"simsub/internal/router"
	"simsub/internal/sim"
	"simsub/internal/t2vec"
	"simsub/internal/traj"
)

// Core re-exported types. These aliases make the internal packages' types
// part of the public API without duplicating them.
type (
	// Point is a timestamped planar location.
	Point = geo.Point
	// Rect is an axis-aligned rectangle.
	Rect = geo.Rect
	// Trajectory is an ordered sequence of points.
	Trajectory = traj.Trajectory
	// Interval identifies the subtrajectory T[I,J] (0-based, inclusive).
	Interval = traj.Interval
	// Measure is an abstract trajectory dissimilarity (smaller = more
	// similar); see Sim for the similarity conversion Θ = 1/(1+d).
	Measure = sim.Measure
	// Incremental extends a subtrajectory distance one point at a time.
	Incremental = sim.Incremental
	// Algorithm is a SimSub search algorithm.
	Algorithm = core.Algorithm
	// Result is a search outcome: interval, distance, work counter.
	Result = core.Result
	// Database is a searchable trajectory collection with optional R-tree.
	Database = core.Database
	// Match is a ranked top-k answer.
	Match = core.Match
	// Policy is a trained DQN splitting policy for RLS / RLS-Skip.
	Policy = rl.Policy
	// T2VecModel is the learned t2vec-style measure.
	T2VecModel = t2vec.Model
	// Engine is the sharded, concurrent trajectory-search service layer
	// (per-shard indexes, bounded worker pool, LRU result cache); it backs
	// the cmd/simsubd HTTP daemon and is usable in-process too.
	Engine = engine.Engine
	// EngineConfig sizes an Engine (shards, workers, cache, index kind).
	EngineConfig = engine.Config
	// EngineIndexKind selects an Engine's per-shard pruning structure.
	EngineIndexKind = engine.IndexKind
	// EngineQuery is one top-k request against an Engine: the full v2
	// query spec (measure/algorithm parameters, spatial filter, distinct
	// collapsing, offset/limit paging).
	EngineQuery = engine.Query
	// EngineParams carries per-query measure/algorithm parameter
	// overrides (EDR/LCSS eps, CDTW band, POS-D delay).
	EngineParams = engine.Params
	// EngineMatch is one ranked Engine answer, identified by global ID.
	EngineMatch = engine.Match
	// EngineStats is a snapshot of Engine counters.
	EngineStats = engine.Stats
	// EnginePolicyInfo describes an Engine's registered RLS/RLS-Skip
	// policy (Engine.SetPolicy / Engine.Policy); with one registered, the
	// engine serves the learned "rls" / "rls-skip" algorithms.
	EnginePolicyInfo = engine.PolicyInfo

	// Searcher answers batched v2 queries; *Engine (in-process) and
	// *Client (remote) both satisfy it, so local and remote search are
	// interchangeable.
	Searcher = api.Searcher
	// StreamSearcher additionally delivers one query's matches
	// incrementally; *Engine and *Client both satisfy it.
	StreamSearcher = api.StreamSearcher
	// Client is the HTTP client of a simsubd server (package client).
	Client = client.Client
	// ClientRetryPolicy tunes the client's opt-in retry with exponential
	// backoff and jitter (client.WithRetry).
	ClientRetryPolicy = client.RetryPolicy
	// Router is the distributed coordinator over a simsubd fleet: it
	// places trajectories by consistent hashing, scatter-gathers top-k
	// with bound propagation and hedged replica requests, and satisfies
	// the same Searcher interfaces as *Engine and *Client. It backs the
	// cmd/simsubrouter HTTP daemon and is usable in-process too.
	Router = router.Router
	// RouterConfig sizes a Router (nodes, replication, hedging, retries).
	RouterConfig = router.Config
	// APIPartial is the typed degradation summary of a scatter-gather
	// answer whose shard nodes were not all reachable.
	APIPartial = api.Partial
	// APIRouterStats is the coordinator tier's own telemetry.
	APIRouterStats = api.RouterStats
	// APIQuery is the wire form of a /v2/query batch.
	APIQuery = api.Query
	// APIQuerySpec is the wire form of one top-k query spec.
	APIQuerySpec = api.QuerySpec
	// APIMatch is the wire form of one ranked answer.
	APIMatch = api.Match
	// APIQueryResponse answers a /v2/query batch, one result per spec.
	APIQueryResponse = api.QueryResponse
	// APIQueryResult is one spec's outcome within a batch.
	APIQueryResult = api.QueryResult
	// APITrajectory is the wire form of a trajectory.
	APITrajectory = api.Trajectory
	// APIRect is the wire form of a spatial filter rectangle.
	APIRect = api.Rect
	// APIStreamSummary is the trailing record of a match stream.
	APIStreamSummary = api.StreamSummary
	// APIError is the typed error of the query API; branch on its Code.
	APIError = api.Error
	// APIErrorCode classifies an APIError ("invalid_argument", ...).
	APIErrorCode = api.Code
)

// Typed API error codes (see api.Code).
const (
	ErrInvalidArgument = api.CodeInvalidArgument
	ErrNotFound        = api.CodeNotFound
	ErrTimeout         = api.CodeTimeout
	ErrCanceled        = api.CodeCanceled
	ErrOverloaded      = api.CodeOverloaded
	ErrTooLarge        = api.CodeTooLarge
	ErrInternal        = api.CodeInternal
)

// NewClient builds the HTTP client of a simsubd server; the result
// satisfies the same Searcher interface as an in-process Engine.
func NewClient(baseURL string, opts ...client.Option) *Client {
	return client.New(baseURL, opts...)
}

// NewRouter builds the distributed coordinator over a simsubd fleet; the
// result satisfies the same Searcher interfaces as an in-process Engine or
// a single-node Client.
func NewRouter(cfg RouterConfig) (*Router, error) { return router.New(cfg) }

// New builds a trajectory from points.
func New(pts ...Point) Trajectory { return traj.New(pts...) }

// FromXY builds a trajectory from alternating x,y coordinates with unit
// time steps. It panics on an odd coordinate count.
func FromXY(xy ...float64) Trajectory { return traj.FromXY(xy...) }

// Sim converts a dissimilarity to the paper's similarity Θ = 1/(1+d).
func Sim(d float64) float64 { return sim.Sim(d) }

// DTW returns the Dynamic Time Warping measure.
func DTW() Measure { return sim.DTW{} }

// Frechet returns the discrete Fréchet measure.
func Frechet() Measure { return sim.Frechet{} }

// CDTW returns band-constrained DTW with relative Sakoe-Chiba width r.
func CDTW(r float64) Measure { return sim.CDTW{R: r} }

// ERP returns the Edit distance with Real Penalty measure (gap at origin).
func ERP() Measure { return sim.ERP{} }

// EDR returns the Edit Distance on Real sequence measure with tolerance eps.
func EDR(eps float64) Measure { return sim.EDR{Eps: eps} }

// LCSS returns the LCSS-derived dissimilarity with tolerance eps.
func LCSS(eps float64) Measure { return sim.LCSS{Eps: eps} }

// MeasureByName constructs a registered measure ("dtw", "frechet", "t2vec",
// "erp", "edr", "lcss", "eds", "edwp", "cdtw").
func MeasureByName(name string) (Measure, error) { return sim.ByName(name) }

// MeasureNames lists all registered measure names.
func MeasureNames() []string { return sim.Names() }

// TrainT2Vec trains a t2vec-style encoder on the trajectories (see
// t2vec.TrainConfig defaults: hidden 16, Adam 0.001). The returned model is
// a Measure.
func TrainT2Vec(trajs []Trajectory, hidden, epochs int, seed int64) (*T2VecModel, error) {
	m, _, err := t2vec.Train(trajs, t2vec.TrainConfig{Hidden: hidden, Epochs: epochs, Seed: seed})
	return m, err
}

// TrainT2VecTokens trains the cell-token variant (the published t2vec's
// pipeline): points are discretized into a grid×grid lattice and the
// encoder consumes learned per-cell embeddings.
func TrainT2VecTokens(trajs []Trajectory, hidden, epochs, grid int, seed int64) (*T2VecModel, error) {
	m, _, err := t2vec.Train(trajs, t2vec.TrainConfig{
		Hidden: hidden, Epochs: epochs, TokenGrid: grid, Seed: seed,
	})
	return m, err
}

// Exact returns the exact search algorithm (ExactS, Algorithm 1).
func Exact(m Measure) Algorithm { return core.ExactS{M: m} }

// Size returns the size-restricted search (SizeS) with soft margin xi.
func Size(m Measure, xi int) Algorithm { return core.SizeS{M: m, Xi: xi} }

// PrefixSuffix returns the PSS splitting search (Algorithm 2).
func PrefixSuffix(m Measure) Algorithm { return core.PSS{M: m} }

// PrefixOnly returns the POS splitting search.
func PrefixOnly(m Measure) Algorithm { return core.POS{M: m} }

// PrefixOnlyDelay returns the POS-D splitting search with delay d.
func PrefixOnlyDelay(m Measure, d int) Algorithm { return core.POSD{M: m, D: d} }

// RL returns the reinforcement-learning search (RLS, or RLS-Skip when the
// policy was trained with skip actions).
func RL(m Measure, p *Policy) Algorithm { return core.RLS{M: m, Policy: p} }

// Spring returns the SPRING DTW subsequence search (band 0 or 1 =
// unconstrained).
func Spring(band float64) Algorithm { return core.Spring{Band: band} }

// UCRSearch returns the adapted UCR suite search with band width r.
func UCRSearch(r float64) Algorithm { return core.UCR{Band: r} }

// RandomSample returns the Random-S baseline drawing the given number of
// subtrajectory samples.
func RandomSample(m Measure, samples int, seed int64) Algorithm {
	return core.RandomS{M: m, Samples: samples, Seed: seed}
}

// WholeTrajectory returns the SimTra baseline (whole trajectory as answer).
func WholeTrajectory(m Measure) Algorithm { return core.SimTra{M: m} }

// PolicyConfig configures TrainPolicy. Zero values use the paper's
// defaults (§6.1): hidden 20, γ 0.95, ε-min 0.05 with decay 0.99, replay
// 2000, Adam 0.001.
type PolicyConfig struct {
	// K is the number of skip actions (0 → RLS, >0 → RLS-Skip; paper k=3).
	K int
	// UseSuffix includes the Θsuf state component (recommended for
	// DTW/Fréchet, not for t2vec).
	UseSuffix bool
	// Episodes is the training episode count.
	Episodes int
	// DoubleDQN enables the Double-DQN bootstrap (an extension beyond the
	// paper's vanilla DQN).
	DoubleDQN bool
	// Seed seeds training.
	Seed int64
	// Verbose receives progress lines when non-nil.
	Verbose func(format string, args ...any)
}

// TrainPolicy trains a DQN splitting policy per Algorithm 3 on uniformly
// sampled (data, query) pairs.
func TrainPolicy(data, queries []Trajectory, m Measure, cfg PolicyConfig) (*Policy, error) {
	p, _, err := rl.Train(data, queries, m, rl.Config{
		K:             cfg.K,
		UseSuffix:     cfg.UseSuffix,
		SimplifyState: cfg.K > 0,
		Episodes:      cfg.Episodes,
		DoubleDQN:     cfg.DoubleDQN,
		Seed:          cfg.Seed,
		Verbose:       cfg.Verbose,
	})
	return p, err
}

// NewDatabase builds a searchable database; withIndex enables the MBR
// R-tree pruning of §6.2(4).
func NewDatabase(ts []Trajectory, withIndex bool) *Database {
	return core.NewDatabase(ts, withIndex)
}

// IndexKind selects a Database pruning structure.
type IndexKind = core.IndexKind

// Database index kinds.
const (
	NoIndex       = core.NoIndex
	RTreeIndex    = core.RTreeIndex
	GridFileIndex = core.GridFileIndex
)

// Engine per-shard index kinds (the zero value is the R-tree).
const (
	EngineRTree   = engine.RTree
	EngineGrid    = engine.Grid
	EngineScanAll = engine.ScanAll
)

// NewDatabaseIndexed builds a database with an explicit index kind
// (NoIndex, RTreeIndex, or the inverted GridFileIndex of §3.1).
func NewDatabaseIndexed(ts []Trajectory, kind IndexKind) *Database {
	return core.NewDatabaseIndexed(ts, kind)
}

// NewEngine builds the sharded concurrent search service. The zero config
// is usable: 4 shards, GOMAXPROCS workers, R-tree indexes, no cache.
func NewEngine(cfg EngineConfig) *Engine { return engine.New(cfg) }

// TopKSubtrajectories returns the k most similar subtrajectories of t to q
// in ascending distance order by exact enumeration (the top-k extension
// sketched in §3.1). With distinct, overlapping answers are collapsed to
// the best representative.
func TopKSubtrajectories(m Measure, t, q Trajectory, k int, distinct bool) []Result {
	return core.TopKExact(m, t, q, k, distinct)
}

// TopKSubtrajectoriesApprox is the splitting-based (PSS-process)
// approximate top-k, at O(n·Φinc) cost.
func TopKSubtrajectoriesApprox(m Measure, t, q Trajectory, k int, distinct bool) []Result {
	return core.TopKSplit(m, t, q, k, distinct)
}

// RandomWalk generates a simple random-walk trajectory — a convenience for
// examples and tests.
func RandomWalk(n int, step float64, seed int64) Trajectory {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	x, y := rng.Float64(), rng.Float64()
	for i := range pts {
		x += rng.NormFloat64() * step
		y += rng.NormFloat64() * step
		pts[i] = Point{X: x, Y: y, T: float64(i)}
	}
	return New(pts...)
}
