// Command simsub answers similar subtrajectory queries over a trajectory
// database: for a query trajectory it reports the top-k most similar
// subtrajectories across all data trajectories (Problem 1 of the paper,
// lifted to a database with optional R-tree pruning).
//
// Usage:
//
//	simsub -data porto.csv -query query.csv -measure dtw -algo pss -topk 5
//	simsub -data porto.csv -query query.csv -algo rls -policy skip.policy -index
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"simsub/internal/core"
	"simsub/internal/rl"
	"simsub/internal/sim"
	"simsub/internal/t2vec"
	"simsub/internal/traj"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simsub: ")
	var (
		dataPath    = flag.String("data", "", "data trajectories (CSV, required)")
		queryPath   = flag.String("query", "", "query trajectory (CSV, first trajectory used; required)")
		measureName = flag.String("measure", "dtw", "similarity measure")
		modelPath   = flag.String("t2vec-model", "", "t2vec model file when -measure t2vec")
		algoName    = flag.String("algo", "pss", "algorithm: exacts, sizes, pss, pos, pos-d, spring, ucr, random-s, simtra, rls")
		policyPath  = flag.String("policy", "", "trained policy file (required for -algo rls)")
		topK        = flag.Int("topk", 5, "number of matches to report")
		useIndex    = flag.Bool("index", false, "build and use the R-tree MBR index")
	)
	flag.Parse()
	if *dataPath == "" || *queryPath == "" {
		log.Fatal("-data and -query are required")
	}

	data, err := traj.LoadCSV(*dataPath)
	if err != nil {
		log.Fatalf("loading data: %v", err)
	}
	queries, err := traj.LoadCSV(*queryPath)
	if err != nil {
		log.Fatalf("loading query: %v", err)
	}
	if len(queries) == 0 || queries[0].Len() == 0 {
		log.Fatal("query file holds no trajectory")
	}
	q := queries[0]

	var m sim.Measure
	if *measureName == "t2vec" && *modelPath != "" {
		m, err = t2vec.LoadFile(*modelPath)
	} else {
		m, err = sim.ByName(*measureName)
	}
	if err != nil {
		log.Fatal(err)
	}

	var alg core.Algorithm
	if *algoName == "rls" {
		if *policyPath == "" {
			log.Fatal("-algo rls requires -policy (train one with cmd/train)")
		}
		p, err := rl.LoadFile(*policyPath)
		if err != nil {
			log.Fatalf("loading policy: %v", err)
		}
		alg = core.RLS{M: m, Policy: p}
	} else {
		var ok bool
		alg, ok = core.AlgorithmFor(*algoName, m)
		if !ok {
			log.Fatalf("unknown algorithm %q", *algoName)
		}
	}

	db := core.NewDatabase(data, *useIndex)
	start := time.Now()
	matches := db.TopK(alg, q, *topK)
	elapsed := time.Since(start)

	fmt.Printf("query: %d points; database: %d trajectories; algorithm: %s (%s); index: %v\n",
		q.Len(), db.Len(), alg.Name(), m.Name(), *useIndex)
	fmt.Printf("search time: %s\n\n", elapsed.Round(time.Microsecond))
	for rank, match := range matches {
		t := db.Traj(match.TrajIndex)
		iv := match.Result.Interval
		fmt.Printf("#%d trajectory %d  subtrajectory [%d..%d] (%d pts)  dist %.6f  sim %.4f\n",
			rank+1, t.ID, iv.I, iv.J, iv.Len(), match.Result.Dist, sim.Sim(match.Result.Dist))
	}
	if len(matches) == 0 {
		fmt.Println("no matches (empty database or everything pruned)")
	}
}
