// Command train fits the learned components: the t2vec-style trajectory
// encoder (§3.2) and the DQN splitting policies of RLS / RLS-Skip
// (Algorithm 3).
//
// Usage:
//
//	train -mode t2vec -data porto.csv -hidden 16 -epochs 5 -out t2vec.model
//	train -mode rls -data porto.csv -measure dtw -k 3 -episodes 500 -out skip.policy
//
// Without -data, a synthetic dataset is generated (-kind, -n).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"simsub/internal/core"
	"simsub/internal/dataset"
	"simsub/internal/rl"
	"simsub/internal/sim"
	"simsub/internal/t2vec"
	"simsub/internal/traj"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("train: ")
	var (
		mode     = flag.String("mode", "rls", "what to train: t2vec or rls")
		data     = flag.String("data", "", "training trajectories (CSV); empty = generate")
		kindName = flag.String("kind", "porto", "synthetic dataset kind when -data is empty")
		n        = flag.Int("n", 500, "synthetic dataset size when -data is empty")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("out", "", "output model/policy file (required)")

		hidden   = flag.Int("hidden", 16, "t2vec embedding width")
		epochs   = flag.Int("epochs", 5, "t2vec training epochs")
		grid     = flag.Int("grid", 0, "t2vec: token lattice resolution (0 = feed raw normalized coordinates)")
		embedDim = flag.Int("embed-dim", 0, "t2vec: token-embedding width when -grid > 0 (0 = default)")
		maxLen   = flag.Int("maxlen", 0, "t2vec: truncate training trajectories for bounded BPTT (0 = default)")
		lr       = flag.Float64("lr", 0, "t2vec: Adam learning rate (0 = default)")

		measureName = flag.String("measure", "dtw", "rls: similarity measure (dtw, frechet, t2vec, ...)")
		modelPath   = flag.String("t2vec-model", "", "rls: t2vec model file when -measure t2vec")
		k           = flag.Int("k", 0, "rls: skip actions (0 = RLS, >0 = RLS-Skip)")
		episodes    = flag.Int("episodes", 500, "rls: training episodes")
		pairs       = flag.Int("pairs", 200, "rls: training pair pool size")
		maxQLen     = flag.Int("maxqlen", 40, "rls: maximum query length in training pairs")
		noSuffix    = flag.Bool("no-suffix", false, "rls: drop the suffix state component (RLS-Skip+)")
	)
	flag.Parse()
	if *out == "" {
		log.Fatal("-out is required")
	}

	ts, err := loadOrGenerate(*data, *kindName, *n, *seed)
	if err != nil {
		log.Fatal(err)
	}
	verbose := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}

	switch *mode {
	case "t2vec":
		model, stats, err := t2vec.Train(ts, t2vec.TrainConfig{
			Hidden: *hidden, Epochs: *epochs, Seed: *seed, Verbose: verbose,
			TokenGrid: *grid, EmbedDim: *embedDim, MaxLen: *maxLen, LR: *lr,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := model.SaveFile(*out); err != nil {
			log.Fatal(err)
		}
		// round-trip verification, mirroring the rls path: the file a simsubd
		// -encoder flag (or POST /v2/admin/encoder) will read must reload and
		// embed identically to the in-memory model
		reloaded, err := t2vec.LoadFile(*out)
		if err != nil {
			log.Fatalf("verifying saved encoder %s: %v", *out, err)
		}
		want, got := model.Embed(ts[0]), reloaded.Embed(ts[0])
		for i := range want {
			if want[i] != got[i] {
				log.Fatalf("verifying saved encoder %s: reloaded embedding diverges at dim %d (%g != %g)",
					*out, i, got[i], want[i])
			}
		}
		last := stats.EpochLoss[len(stats.EpochLoss)-1]
		fmt.Fprintf(os.Stderr, "saved t2vec encoder to %s (dim %d, grid %d, final loss %.6f; reload probe ok)\n",
			*out, reloaded.Dim(), reloaded.Grid(), last)

	case "rls":
		m, err := resolveMeasure(*measureName, *modelPath)
		if err != nil {
			log.Fatal(err)
		}
		ps := dataset.Pairs(ts, *pairs, 0, *maxQLen, *seed+13)
		datas := make([]traj.Trajectory, len(ps))
		queries := make([]traj.Trajectory, len(ps))
		for i, p := range ps {
			datas[i] = p.Data
			queries[i] = p.Query
		}
		useSuffix := *measureName != "t2vec" && !*noSuffix
		policy, stats, err := rl.Train(datas, queries, m, rl.Config{
			K: *k, UseSuffix: useSuffix, SimplifyState: *k > 0,
			Episodes: *episodes, Seed: *seed, Verbose: verbose,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := policy.SaveFile(*out); err != nil {
			log.Fatal(err)
		}
		// round-trip verification: the file a simsubd -policy flag will read
		// must reload and validate; catching a serialization problem here
		// beats discovering it at server start
		reloaded, err := rl.LoadFile(*out)
		if err != nil {
			log.Fatalf("verifying saved policy %s: %v", *out, err)
		}
		probe := core.RLS{M: m, Policy: reloaded}
		r := probe.Search(datas[0], queries[0])
		fmt.Fprintf(os.Stderr, "saved %s policy to %s (k=%d suffix=%v, %d episodes in %s, recent reward %.4f; reload probe dist %.4f)\n",
			probe.Name(), *out, *k, useSuffix, *episodes, stats.Duration.Round(1e6), stats.MeanRecentReward(50), r.Dist)

	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}

func loadOrGenerate(path, kindName string, n int, seed int64) ([]traj.Trajectory, error) {
	if path != "" {
		return traj.LoadCSV(path)
	}
	kind, err := dataset.KindByName(kindName)
	if err != nil {
		return nil, err
	}
	return dataset.Generate(dataset.Config{Kind: kind, N: n, Seed: seed}), nil
}

func resolveMeasure(name, modelPath string) (sim.Measure, error) {
	if name == "t2vec" && modelPath != "" {
		return t2vec.LoadFile(modelPath)
	}
	return sim.ByName(name)
}
