// Command simsubrouter is the distributed front door of a simsubd fleet:
// a coordinator that places trajectories across shard nodes with
// consistent hashing, scatter-gathers top-k queries with the engine's
// k-way merge, and ships its running global k-th-best distance to remote
// shards (QuerySpec.bound) so they prune like local ones. It speaks the
// same HTTP surface as a single simsubd, so existing clients point at it
// unchanged.
//
// Usage:
//
//	simsubrouter -addr :9080 -nodes http://n1:8080,http://n2:8080
//	simsubrouter -addr :9080 -nodes http://a:8080,http://b:8080,http://c:8080,http://d:8080 -replication 2
//
// With -replication R, consecutive runs of R nodes form replica groups:
// every trajectory is loaded to all replicas of its group, slow requests
// are hedged to the next replica after the primary's recent latency
// quantile, and a dead node costs nothing while a replica answers. An
// unreachable group degrades query answers to a typed partial result over
// the reachable corpus instead of failing them.
//
// The shard nodes must be dedicated to the router: it owns their
// trajectory ID space and assumes nothing else loads data into them.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"simsub/client"
	"simsub/internal/failpoint"
	"simsub/internal/router"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simsubrouter: ")
	var (
		addr        = flag.String("addr", ":9080", "listen address")
		nodes       = flag.String("nodes", "", "comma-separated backend simsubd base URLs (required)")
		replication = flag.Int("replication", 1, "replica-group size; must divide the node count")
		vnodes      = flag.Int("vnodes", 64, "consistent-hash virtual nodes per group")
		hedgeQ      = flag.Float64("hedge-quantile", 0.95, "node latency quantile that arms the hedge timer")
		hedgeMin    = flag.Duration("hedge-min", 10*time.Millisecond, "hedge-delay floor")
		noHedge     = flag.Bool("no-hedge", false, "disable hedged replica requests")
		noBound     = flag.Bool("no-bound", false, "disable two-wave k-th-best bound propagation")
		retries     = flag.Int("retries", 3, "per-node request attempts (backoff on overload and transient network errors)")
		timeout     = flag.Duration("timeout", 60*time.Second, "per-request fan-out timeout cap")
		nodeTimeout = flag.Duration("node-timeout", 15*time.Second, "per-node attempt timeout")
		failpoints  = flag.Bool("failpoints", false, "expose /v2/admin/failpoints for runtime fault injection (chaos testing only)")
	)
	flag.Parse()

	if armed, err := failpoint.EnableFromEnv(); err != nil {
		log.Fatalf("parsing %s: %v", failpoint.EnvVar, err)
	} else if len(armed) > 0 {
		log.Printf("failpoints armed from %s: %s", failpoint.EnvVar, strings.Join(armed, ", "))
	}

	var bases []string
	for _, n := range strings.Split(*nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			bases = append(bases, n)
		}
	}
	if len(bases) == 0 {
		log.Fatal("-nodes is required, e.g. -nodes http://n1:8080,http://n2:8080")
	}

	rt, err := router.New(router.Config{
		Nodes:              bases,
		Replication:        *replication,
		VNodes:             *vnodes,
		Retry:              client.RetryPolicy{MaxAttempts: *retries},
		HedgeQuantile:      *hedgeQ,
		HedgeMin:           *hedgeMin,
		NoHedge:            *noHedge,
		NoBoundPropagation: *noBound,
		NodeTimeout:        *nodeTimeout,
	})
	if err != nil {
		log.Fatalf("configuring router: %v", err)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           router.NewHandler(rt, router.HandlerOptions{MaxTimeout: *timeout, EnableFailpoints: *failpoints}),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("routing %d nodes in %d groups (replication %d) on %s",
		len(bases), len(bases)/(*replication), *replication, *addr)

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
	}
}
