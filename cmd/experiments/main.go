// Command experiments regenerates the tables and figures of the paper's
// evaluation (§6 and Appendix D) on the synthetic datasets and prints them
// as text tables. DESIGN.md §4 maps each experiment id to its
// implementation; EXPERIMENTS.md records a reference run.
//
// Usage:
//
//	experiments -exp all                 # everything, default scale
//	experiments -exp fig3 -pairs 200     # one experiment, larger scale
//
// Experiment ids: fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 table5
// table6 table7 ablations cdtw all
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"simsub/internal/bench"
	"simsub/internal/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		exp      = flag.String("exp", "all", "experiment id (fig3..fig11, table5..table7, ablations, all)")
		pairs    = flag.Int("pairs", 30, "effectiveness pairs per configuration (paper: 10000)")
		datasetN = flag.Int("datasetn", 150, "trajectories per synthetic dataset")
		episodes = flag.Int("episodes", 150, "DQN training episodes per policy")
		seed     = flag.Int64("seed", 1, "random seed")
		quiet    = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Parse()

	opts := bench.Options{
		Pairs:    *pairs,
		DatasetN: *datasetN,
		Episodes: *episodes,
		Seed:     *seed,
	}
	if !*quiet {
		opts.Verbose = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	s := bench.NewSuite(opts)

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "table5", "table6", "table7", "ablations", "cdtw"}
	}
	for _, id := range ids {
		if err := run(s, strings.TrimSpace(id)); err != nil {
			log.Fatalf("%s: %v", id, err)
		}
	}
}

func run(s *bench.Suite, id string) error {
	emit := func(t bench.Table, err error) error {
		if err != nil {
			return err
		}
		fmt.Println(t.Format())
		return nil
	}
	switch id {
	case "fig3":
		for _, kind := range []dataset.Kind{dataset.Porto, dataset.Harbin} {
			for _, m := range bench.MeasureNames() {
				if err := emit(s.Fig3Effectiveness(kind, m)); err != nil {
					return err
				}
			}
		}
	case "fig4":
		for _, withIndex := range []bool{false, true} {
			for _, m := range bench.MeasureNames() {
				if err := emit(s.Fig4Efficiency(dataset.Porto, m, withIndex)); err != nil {
					return err
				}
			}
		}
	case "fig10":
		for _, kind := range []dataset.Kind{dataset.Harbin, dataset.Sports} {
			for _, withIndex := range []bool{false, true} {
				if err := emit(s.Fig4Efficiency(kind, "dtw", withIndex)); err != nil {
					return err
				}
			}
		}
	case "fig5":
		for _, m := range bench.MeasureNames() {
			if err := emit(s.Fig5QueryLenEffectiveness(dataset.Porto, m)); err != nil {
				return err
			}
		}
	case "fig11":
		for _, kind := range []dataset.Kind{dataset.Porto, dataset.Harbin} {
			for _, m := range bench.MeasureNames() {
				if err := emit(s.Fig5QueryLenEffectiveness(kind, m)); err != nil {
					return err
				}
			}
		}
	case "fig6":
		for _, m := range bench.MeasureNames() {
			if err := emit(s.Fig6QueryLenEfficiency(dataset.Porto, m)); err != nil {
				return err
			}
		}
	case "fig7", "fig12":
		return emit(s.Fig7SizeSXi(dataset.Porto, "dtw", nil))
	case "fig8", "fig13":
		return emit(s.Fig8UCRSpring(dataset.Porto, nil))
	case "fig9", "fig14":
		return emit(s.Fig9RandomS(dataset.Porto, nil))
	case "table5":
		return emit(s.Table5SkipK(dataset.Porto, "dtw", nil))
	case "table6":
		return emit(s.Table6SimTra(nil))
	case "table7":
		return emit(s.Table7TrainingTime(nil))
	case "ablations":
		if err := emit(s.AblationDelay(dataset.Porto, "dtw", nil)); err != nil {
			return err
		}
		if err := emit(s.AblationIncremental(dataset.Porto, "dtw")); err != nil {
			return err
		}
		return emit(s.AblationSkipState(dataset.Porto, "dtw"))
	case "cdtw":
		return emit(s.FutureWorkCDTW(dataset.Porto, 0.25))
	default:
		return fmt.Errorf("unknown experiment id %q", id)
	}
	return nil
}
