// Command simsubd serves similar subtrajectory search over HTTP: a sharded
// in-memory trajectory store answering concurrent top-k queries under any
// registered measure and algorithm, with a bounded worker pool, per-request
// timeouts and an LRU result cache.
//
// Usage:
//
//	simsubd -addr :8080 -shards 8 -workers 16 -cache 4096
//	simsubd -addr :8080 -data porto.csv -index grid
//	simsubd -addr :8080 -policy skip.policy -quality-sample 0.01
//
// Endpoints: POST /v2/query (batched specs), POST /v2/query/stream (NDJSON
// incremental matches), GET /v2/trajectories/{id}, GET /v2/stats, plus the
// /v1 compatibility surface (POST /v1/trajectories, /v1/topk, /v1/search;
// GET /v1/stats) and GET /healthz. Errors are typed
// {"error": {"code", "message"}} envelopes. See docs/API.md for the full
// endpoint reference and README.md for an example curl session; package
// client is the matching Go client.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"simsub/internal/engine"
	"simsub/internal/rl"
	"simsub/internal/server"
	"simsub/internal/traj"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simsubd: ")
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		shards     = flag.Int("shards", 4, "store shard count")
		workers    = flag.Int("workers", 0, "bounded worker-pool size (0 = GOMAXPROCS)")
		cacheSize  = flag.Int("cache", 1024, "LRU result-cache entries (0 disables)")
		indexName  = flag.String("index", "rtree", "per-shard index: rtree, grid, none")
		dataPath   = flag.String("data", "", "optional CSV of trajectories to preload")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-request search timeout cap")
		policyPath = flag.String("policy", "", "optional RLS/RLS-Skip policy file (cmd/train -mode rls) enabling the learned algorithms")
		qualitySam = flag.Float64("quality-sample", 0, "fraction of learned-search queries re-scored against the exact ranking for serving-quality stats")
	)
	flag.Parse()

	var kind engine.IndexKind
	switch *indexName {
	case "rtree":
		kind = engine.RTree
	case "grid":
		kind = engine.Grid
	case "none":
		kind = engine.ScanAll
	default:
		log.Fatalf("unknown -index %q (want rtree, grid or none)", *indexName)
	}

	eng := engine.New(engine.Config{
		Shards:        *shards,
		Workers:       *workers,
		CacheSize:     *cacheSize,
		Index:         kind,
		QualitySample: *qualitySam,
	})
	if *policyPath != "" {
		p, err := rl.LoadFile(*policyPath)
		if err != nil {
			log.Fatalf("loading policy %s: %v", *policyPath, err)
		}
		info, err := eng.SetPolicy(p)
		if err != nil {
			log.Fatalf("registering policy %s: %v", *policyPath, err)
		}
		log.Printf("serving %s policy from %s (k=%d, fingerprint %s)", info.Name, *policyPath, info.K, info.Fingerprint)
	}
	if *dataPath != "" {
		ts, err := traj.LoadCSV(*dataPath)
		if err != nil {
			log.Fatalf("preloading %s: %v", *dataPath, err)
		}
		eng.Add(ts)
		log.Printf("preloaded %d trajectories from %s", len(ts), *dataPath)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(eng, server.Options{MaxTimeout: *timeout}),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("listening on %s (%d shards, cache %d, index %s)", *addr, *shards, *cacheSize, *indexName)

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
	}
}
