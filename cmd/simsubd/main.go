// Command simsubd serves similar subtrajectory search over HTTP: a sharded
// in-memory trajectory store answering concurrent top-k queries under any
// registered measure and algorithm, with a bounded worker pool, per-request
// timeouts and an LRU result cache. With -data-dir the corpus is also
// durable: loads append to a checksummed segment log, metadata is
// snapshotted periodically, and on boot the node recovers the log (serving
// 503 "recovering" until the replay finishes) before flipping to ready.
//
// Usage:
//
//	simsubd -addr :8080 -shards 8 -workers 16 -cache 4096
//	simsubd -addr :8080 -data porto.csv -index grid
//	simsubd -addr :8080 -policy skip.policy -quality-sample 0.01
//	simsubd -addr :8080 -encoder t2vec.model -recall-sample 0.05
//	simsubd -addr :8080 -data-dir /var/lib/simsub -snapshot-interval 5m
//
// Endpoints: POST /v2/query (batched specs), POST /v2/query/stream (NDJSON
// incremental matches), GET /v2/trajectories/{id}, POST /v2/load/stream
// (NDJSON bulk ingest), GET /v2/stats, plus the /v1 compatibility surface
// (POST /v1/trajectories, /v1/topk, /v1/search; GET /v1/stats) and
// GET /healthz. Errors are typed {"error": {"code", "message"}} envelopes.
// See docs/API.md for the full endpoint reference and README.md for an
// example curl session; package client is the matching Go client.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"simsub/api"
	"simsub/internal/engine"
	"simsub/internal/failpoint"
	"simsub/internal/rl"
	"simsub/internal/server"
	"simsub/internal/storage"
	"simsub/internal/t2vec"
	"simsub/internal/traj"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simsubd: ")
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		shards     = flag.Int("shards", 4, "store shard count")
		workers    = flag.Int("workers", 0, "bounded worker-pool size (0 = GOMAXPROCS)")
		cacheSize  = flag.Int("cache", 1024, "LRU result-cache entries (0 disables)")
		indexName  = flag.String("index", "rtree", "per-shard index: rtree, grid, none")
		dataPath   = flag.String("data", "", "optional CSV of trajectories to preload")
		dataDir    = flag.String("data-dir", "", "directory for the persistent segment log (empty = in-memory only)")
		snapEvery  = flag.Duration("snapshot-interval", 5*time.Minute, "how often to snapshot derived metadata when -data-dir is set")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-request search timeout cap")
		policyPath = flag.String("policy", "", "optional RLS/RLS-Skip policy file (cmd/train -mode rls) enabling the learned algorithms")
		policyRes  = flag.Int("policy-compile", 0, "compile the -policy network onto a dense action table at this grid resolution (0 = serve the network directly)")
		batchLanes = flag.Int("batch-lanes", 0, "lockstep lanes per shard scan for the learned searches (0 = default 64, 1 = sequential)")
		qualitySam = flag.Float64("quality-sample", 0, "fraction of learned-search queries re-scored against the exact ranking for serving-quality stats")
		encPath    = flag.String("encoder", "", "optional t2vec encoder file (cmd/train -mode t2vec) enabling the ann prefilter and the embed algorithm")
		recallSam  = flag.Float64("recall-sample", 0, "fraction of ann-prefiltered queries re-scored against the exhaustive candidate scan for recall stats")
		failpoints = flag.Bool("failpoints", false, "expose /v2/admin/failpoints for runtime fault injection (chaos testing only)")
	)
	flag.Parse()

	if armed, err := failpoint.EnableFromEnv(); err != nil {
		log.Fatalf("parsing %s: %v", failpoint.EnvVar, err)
	} else if len(armed) > 0 {
		log.Printf("failpoints armed from %s: %s", failpoint.EnvVar, strings.Join(armed, ", "))
	}

	var kind engine.IndexKind
	switch *indexName {
	case "rtree":
		kind = engine.RTree
	case "grid":
		kind = engine.Grid
	case "none":
		kind = engine.ScanAll
	default:
		log.Fatalf("unknown -index %q (want rtree, grid or none)", *indexName)
	}

	eng := engine.New(engine.Config{
		Shards:        *shards,
		Workers:       *workers,
		CacheSize:     *cacheSize,
		Index:         kind,
		QualitySample: *qualitySam,
		RecallSample:  *recallSam,
		BatchLanes:    *batchLanes,
	})
	if *policyRes != 0 && *policyPath == "" {
		log.Fatalf("-policy-compile requires -policy")
	}
	if *policyPath != "" {
		p, err := rl.LoadFile(*policyPath)
		if err != nil {
			log.Fatalf("loading policy %s: %v", *policyPath, err)
		}
		info, err := eng.SetPolicyCompiled(p, *policyRes)
		if err != nil {
			log.Fatalf("registering policy %s: %v", *policyPath, err)
		}
		if info.Compiled {
			log.Printf("serving %s policy from %s (k=%d, fingerprint %s; compiled table res=%d divergence=%.4f fingerprint %s)",
				info.Name, *policyPath, info.K, info.Fingerprint,
				info.CompileResolution, info.CompileDivergence, info.CompiledFingerprint)
		} else {
			log.Printf("serving %s policy from %s (k=%d, fingerprint %s)", info.Name, *policyPath, info.K, info.Fingerprint)
		}
	}
	// The encoder registers BEFORE the store attaches: recovery then finds
	// the fingerprint of the snapshot's persisted embeddings matching the
	// registered encoder and reuses them instead of re-encoding the corpus.
	if *encPath != "" {
		m, err := t2vec.LoadFile(*encPath)
		if err != nil {
			log.Fatalf("loading encoder %s: %v", *encPath, err)
		}
		info, err := eng.SetEncoder(m)
		if err != nil {
			log.Fatalf("registering encoder %s: %v", *encPath, err)
		}
		log.Printf("serving t2vec encoder from %s (dim %d, grid %d, fingerprint %s)",
			*encPath, info.Dim, info.Grid, info.Fingerprint)
	}

	handler := server.New(eng, server.Options{MaxTimeout: *timeout, EnableFailpoints: *failpoints})

	if *dataDir == "" {
		if *dataPath != "" {
			preload(eng, *dataPath)
		}
	} else {
		// Recover the persistent log in the background: the node serves
		// 503 "recovering" (health + data paths) until the replay is
		// attached, so a router can fail over instead of waiting on us.
		handler.SetReady(false)
		go func() {
			st, rs, err := storage.Open(*dataDir, storage.Options{})
			if err != nil {
				log.Fatalf("recovering %s: %v", *dataDir, err)
			}
			log.Printf("recovery: %s", rs.String())
			if err := eng.AttachStore(st); err != nil {
				log.Fatalf("attaching store: %v", err)
			}
			handler.SetRecovery(api.RecoveryInfo{
				Segments:            rs.Segments,
				Records:             rs.Records,
				SnapshotRecords:     rs.SnapshotRecords,
				Replayed:            rs.Replayed,
				TornTailTruncations: rs.TornTailTruncations,
				SnapshotsDiscarded:  rs.SnapshotsDiscarded,
				WallMS:              float64(rs.Wall.Microseconds()) / 1000,
			})
			handler.SetReady(true)
			log.Printf("ready: serving %d trajectories from %s", st.Len(), *dataDir)
			if *dataPath != "" {
				if st.Len() > 0 {
					log.Printf("skipping -data preload: %s already holds %d trajectories", *dataDir, st.Len())
				} else {
					preload(eng, *dataPath)
				}
			}
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *dataDir != "" {
		go snapshotLoop(ctx, eng, *snapEvery)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("listening on %s (%d shards, cache %d, index %s)", *addr, *shards, *cacheSize, *indexName)

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Stop admitting bulk loads and wait out the in-flight ones BEFORE the
	// HTTP drain: Shutdown abandons requests still running at its timeout,
	// and the final snapshot+fsync below must never race an abandoned
	// streaming load's batched commit.
	if err := handler.Drain(shutdownCtx); err != nil {
		log.Printf("draining loads: %v", err)
	}
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
	}
	// After the HTTP drain, no more appends can arrive: take a final
	// snapshot and fsync the active segment so the next boot replays
	// nothing.
	if st := eng.Store(); st != nil {
		if err := st.Close(); err != nil {
			log.Printf("closing store: %v", err)
		} else {
			log.Printf("store closed: snapshot covers %d trajectories", st.Len())
		}
	}
}

// preload bulk-loads a CSV corpus into the engine (and through it the
// persistent store, when one is attached).
func preload(eng *engine.Engine, path string) {
	ts, err := traj.LoadCSV(path)
	if err != nil {
		log.Fatalf("preloading %s: %v", path, err)
	}
	if _, err := eng.Add(ts); err != nil {
		log.Fatalf("preloading %s: %v", path, err)
	}
	log.Printf("preloaded %d trajectories from %s", len(ts), path)
}

// snapshotLoop periodically snapshots the attached store's derived
// metadata so recovery replays only the tail written since the last tick.
func snapshotLoop(ctx context.Context, eng *engine.Engine, every time.Duration) {
	if every <= 0 {
		return
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			st := eng.Store()
			if st == nil {
				continue // still recovering
			}
			if err := st.Snapshot(); err != nil {
				log.Printf("snapshot: %v", err)
			}
		}
	}
}
