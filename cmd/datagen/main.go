// Command datagen generates synthetic trajectory datasets (Porto-like,
// Harbin-like, Sports-like; see DESIGN.md for the substitution rationale)
// and writes them as CSV, JSON or NDJSON — or, with -in, converts a real
// GPS dump (Porto taxi trips, Microsoft T-Drive logs) into any of those
// formats, or directly into a persistent segment store that simsubd
// -data-dir can boot from without replaying a load.
//
// Usage:
//
//	datagen -kind porto -n 1000 -seed 1 -format csv -out porto.csv
//	datagen -in train.csv -informat porto -format ndjson -out porto.ndjson
//	datagen -in tdrive/ -informat tdrive -format segments -out /var/lib/simsub
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"

	"simsub/internal/dataset"
	"simsub/internal/storage"
	"simsub/internal/traj"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	var (
		kindName = flag.String("kind", "porto", "dataset kind: porto, harbin or sports")
		n        = flag.Int("n", 1000, "number of trajectories to generate, or cap when converting with -in (0 = all)")
		seed     = flag.Int64("seed", 1, "random seed")
		format   = flag.String("format", "csv", "output format: csv, json, ndjson or segments")
		out      = flag.String("out", "", "output file, or directory for -format segments (default stdout)")
		minLen   = flag.Int("minlen", 0, "minimum trajectory length (0 = family default)")
		maxLen   = flag.Int("maxlen", 0, "maximum trajectory length (0 = family default)")
		in       = flag.String("in", "", "convert a real GPS dump (file, or directory of files for tdrive) instead of generating")
		informat = flag.String("informat", "porto", "input format for -in: porto (trip CSV with JSON polylines) or tdrive (per-fix taxi logs)")
	)
	flag.Parse()

	var ts []traj.Trajectory
	if *in != "" {
		var err error
		ts, err = readReal(*in, *informat, *n)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		kind, err := dataset.KindByName(*kindName)
		if err != nil {
			log.Fatal(err)
		}
		ts = dataset.Generate(dataset.Config{
			Kind: kind, N: *n, Seed: *seed, MinLen: *minLen, MaxLen: *maxLen,
		})
	}

	if *format == "segments" {
		if *out == "" {
			log.Fatal("-format segments needs -out DIR")
		}
		st, _, err := storage.Open(*out, storage.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if st.Len() > 0 {
			log.Fatalf("%s already holds %d trajectories; refusing to append (point -out at an empty directory)", *out, st.Len())
		}
		if _, err := st.Append(ts); err != nil {
			log.Fatal(err)
		}
		if err := st.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d trajectories (%d points) to segment store %s\n",
			len(ts), dataset.TotalPoints(ts), *out)
		return
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "csv":
		err = traj.WriteCSV(w, ts)
	case "json":
		err = traj.WriteJSON(w, ts)
	case "ndjson":
		err = traj.WriteNDJSON(w, ts)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d trajectories (%d points)\n",
		len(ts), dataset.TotalPoints(ts))
}

// readReal converts a real GPS dump into trajectories. Porto input is a
// single trip CSV; T-Drive input may be a single log or a directory of
// per-taxi logs (the dataset ships one file per taxi), concatenated in
// name order so each taxi's fixes stay contiguous. maxN caps how many
// trajectories are read (0 = all).
func readReal(path, format string, maxN int) ([]traj.Trajectory, error) {
	switch format {
	case "porto":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return traj.ReadPortoCSV(f, maxN)
	case "tdrive":
		info, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			return traj.ReadTDriveCSV(f, maxN)
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return nil, err
		}
		var names []string
		for _, e := range entries {
			if !e.IsDir() {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
		readers := make([]io.Reader, 0, len(names))
		closers := make([]io.Closer, 0, len(names))
		defer func() {
			for _, c := range closers {
				c.Close()
			}
		}()
		for _, name := range names {
			f, err := os.Open(filepath.Join(path, name))
			if err != nil {
				return nil, err
			}
			readers = append(readers, f)
			closers = append(closers, f)
		}
		return traj.ReadTDriveCSV(io.MultiReader(readers...), maxN)
	default:
		return nil, fmt.Errorf("unknown -informat %q (want porto or tdrive)", format)
	}
}
