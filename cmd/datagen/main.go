// Command datagen generates synthetic trajectory datasets (Porto-like,
// Harbin-like, Sports-like; see DESIGN.md for the substitution rationale)
// and writes them as CSV or JSON.
//
// Usage:
//
//	datagen -kind porto -n 1000 -seed 1 -format csv -out porto.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"simsub/internal/dataset"
	"simsub/internal/traj"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	var (
		kindName = flag.String("kind", "porto", "dataset kind: porto, harbin or sports")
		n        = flag.Int("n", 1000, "number of trajectories")
		seed     = flag.Int64("seed", 1, "random seed")
		format   = flag.String("format", "csv", "output format: csv or json")
		out      = flag.String("out", "", "output file (default stdout)")
		minLen   = flag.Int("minlen", 0, "minimum trajectory length (0 = family default)")
		maxLen   = flag.Int("maxlen", 0, "maximum trajectory length (0 = family default)")
	)
	flag.Parse()

	kind, err := dataset.KindByName(*kindName)
	if err != nil {
		log.Fatal(err)
	}
	ts := dataset.Generate(dataset.Config{
		Kind: kind, N: *n, Seed: *seed, MinLen: *minLen, MaxLen: *maxLen,
	})

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "csv":
		err = traj.WriteCSV(w, ts)
	case "json":
		err = traj.WriteJSON(w, ts)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d trajectories (%d points, %s)\n",
		len(ts), dataset.TotalPoints(ts), kind)
}
