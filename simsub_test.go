package simsub

import (
	"math"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	data := FromXY(0, 0, 1, 0, 2, 0, 3, 1, 4, 2)
	query := FromXY(2, 0, 3, 1)
	res := Exact(DTW()).Search(data, query)
	if !res.Interval.Valid(data.Len()) {
		t.Fatalf("invalid interval %v", res.Interval)
	}
	if res.Dist > 1e-9 {
		t.Errorf("embedded query should be found exactly, dist %v", res.Dist)
	}
}

func TestAllAlgorithmConstructors(t *testing.T) {
	data := RandomWalk(20, 0.1, 1)
	query := RandomWalk(5, 0.1, 2)
	m := DTW()
	algs := []Algorithm{
		Exact(m),
		Size(m, 3),
		PrefixSuffix(m),
		PrefixOnly(m),
		PrefixOnlyDelay(m, 5),
		Spring(1),
		UCRSearch(0.5),
		RandomSample(m, 20, 3),
		WholeTrajectory(m),
	}
	exact := algs[0].Search(data, query)
	for _, a := range algs {
		res := a.Search(data, query)
		if !res.Interval.Valid(data.Len()) {
			t.Errorf("%s: invalid interval %v", a.Name(), res.Interval)
		}
		if res.Dist < exact.Dist-1e-9 {
			t.Errorf("%s: dist %v beats exact %v", a.Name(), res.Dist, exact.Dist)
		}
	}
}

func TestAllMeasureConstructors(t *testing.T) {
	a := RandomWalk(10, 0.05, 4)
	for _, m := range []Measure{DTW(), Frechet(), CDTW(0.5), ERP(), EDR(0.3), LCSS(0.3)} {
		if d := m.Dist(a, a); math.Abs(d) > 1e-9 {
			t.Errorf("%s: self distance %v", m.Name(), d)
		}
	}
	names := MeasureNames()
	if len(names) < 9 {
		t.Errorf("registered measures: %v", names)
	}
	for _, n := range names {
		if _, err := MeasureByName(n); err != nil {
			t.Errorf("MeasureByName(%q): %v", n, err)
		}
	}
}

func TestTrainedPolicyEndToEnd(t *testing.T) {
	var data, queries []Trajectory
	for i := 0; i < 10; i++ {
		data = append(data, RandomWalk(15, 0.05, int64(i+1)))
		queries = append(queries, RandomWalk(4, 0.05, int64(100+i)))
	}
	p, err := TrainPolicy(data, queries, DTW(), PolicyConfig{
		K: 3, UseSuffix: true, Episodes: 15, Seed: 5,
	})
	if err != nil {
		t.Fatalf("TrainPolicy: %v", err)
	}
	alg := RL(DTW(), p)
	if alg.Name() != "RLS-Skip" {
		t.Errorf("Name = %q", alg.Name())
	}
	res := alg.Search(data[0], queries[0])
	if !res.Interval.Valid(data[0].Len()) {
		t.Errorf("invalid interval %v", res.Interval)
	}
}

func TestDatabaseTopK(t *testing.T) {
	var ts []Trajectory
	for i := 0; i < 20; i++ {
		tr := RandomWalk(25, 0.02, int64(i+1))
		tr.ID = i
		ts = append(ts, tr)
	}
	db := NewDatabase(ts, true)
	q := ts[3].Sub(5, 9)
	top := db.TopK(PrefixSuffix(DTW()), q, 5)
	if len(top) == 0 {
		t.Fatal("no matches")
	}
	for i := 1; i < len(top); i++ {
		if top[i-1].Result.Dist > top[i].Result.Dist {
			t.Fatal("matches unsorted")
		}
	}
}

func TestT2VecTraining(t *testing.T) {
	var ts []Trajectory
	for i := 0; i < 10; i++ {
		ts = append(ts, RandomWalk(12, 0.03, int64(i+1)))
	}
	m, err := TrainT2Vec(ts, 8, 1, 7)
	if err != nil {
		t.Fatalf("TrainT2Vec: %v", err)
	}
	if d := m.Dist(ts[0], ts[0]); d != 0 {
		t.Errorf("self dist %v", d)
	}
	res := Exact(m).Search(ts[0], ts[1])
	if !res.Interval.Valid(ts[0].Len()) {
		t.Errorf("invalid interval")
	}
}

func TestTopKSubtrajectories(t *testing.T) {
	data := RandomWalk(15, 0.1, 8)
	q := RandomWalk(4, 0.1, 9)
	exact := Exact(DTW()).Search(data, q)
	top := TopKSubtrajectories(DTW(), data, q, 5, false)
	if len(top) != 5 {
		t.Fatalf("got %d results", len(top))
	}
	if math.Abs(top[0].Dist-exact.Dist) > 1e-9 {
		t.Errorf("top-1 %v, exact %v", top[0].Dist, exact.Dist)
	}
	approx := TopKSubtrajectoriesApprox(DTW(), data, q, 5, true)
	if len(approx) == 0 {
		t.Fatal("no approximate results")
	}
	for i := 1; i < len(approx); i++ {
		if approx[i-1].Dist > approx[i].Dist {
			t.Fatal("approximate top-k not sorted")
		}
	}
}

func TestGridIndexedDatabaseAPI(t *testing.T) {
	var ts []Trajectory
	for i := 0; i < 15; i++ {
		tr := RandomWalk(20, 0.01, int64(i+1))
		tr.ID = i
		ts = append(ts, tr)
	}
	db := NewDatabaseIndexed(ts, GridFileIndex)
	q := ts[4].Sub(3, 8)
	top := db.TopKParallel(PrefixSuffix(DTW()), q, 3, 4)
	if len(top) == 0 {
		t.Fatal("no matches")
	}
}

func TestSimplifyAPI(t *testing.T) {
	tr := FromXY(0, 0, 1, 0, 2, 0, 3, 0)
	if s := tr.Simplify(0.01); s.Len() != 2 {
		t.Errorf("Simplify kept %d points", s.Len())
	}
}

func TestSimConversionExported(t *testing.T) {
	if Sim(0) != 1 {
		t.Error("Sim(0) != 1")
	}
	if s := Sim(3); math.Abs(s-0.25) > 1e-12 {
		t.Errorf("Sim(3) = %v", s)
	}
}
