// Quickstart: find the portion of a data trajectory most similar to a query
// trajectory, exactly and with the fast splitting heuristics.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"simsub"
)

func main() {
	// A vehicle drives east, loops north, then continues east. The query is
	// the northward loop of a second vehicle, slightly offset.
	data := simsub.FromXY(
		0, 0, 1, 0, 2, 0, 3, 0, // eastbound
		3, 1, 3, 2, 4, 2, 4, 1, // the loop
		4, 0, 5, 0, 6, 0, // eastbound again
	)
	query := simsub.FromXY(3.1, 0.9, 3.1, 2.1, 3.9, 2.1, 3.9, 0.9)

	fmt.Printf("data: %d points, %d subtrajectories; query: %d points\n\n",
		data.Len(), data.NumSubtrajectories(), query.Len())

	for _, alg := range []simsub.Algorithm{
		simsub.Exact(simsub.DTW()),           // O(n²m): scores every subtrajectory
		simsub.PrefixSuffix(simsub.DTW()),    // O(nm): greedy splitting (PSS)
		simsub.Size(simsub.DTW(), 2),         // size-restricted (SizeS, ξ=2)
		simsub.WholeTrajectory(simsub.DTW()), // the SimTra strawman
	} {
		res := alg.Search(data, query)
		fmt.Printf("%-8s -> subtrajectory %v (%d pts), DTW distance %.3f, similarity %.3f\n",
			alg.Name(), res.Interval, res.Interval.Len(), res.Dist, simsub.Sim(res.Dist))
	}

	// the exact answer is the loop
	best := simsub.Exact(simsub.DTW()).Search(data, query)
	fmt.Printf("\nmost similar portion: points %d..%d -> %v\n",
		best.Interval.I, best.Interval.J, data.Sub(best.Interval.I, best.Interval.J).Points)
}
