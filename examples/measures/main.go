// Measure comparison: the SimSub problem is defined over an abstract
// similarity measurement (§3.1). This example runs the same search under
// every implemented measure — DTW, discrete Fréchet, a trained t2vec-style
// encoder, and the extension measures ERP/EDR/LCSS/EDS/EDwP — showing how
// the returned subtrajectory shifts with the measure while the exact
// algorithm stays the same code.
//
// Run with: go run ./examples/measures
package main

import (
	"fmt"
	"time"

	"simsub"
	"simsub/internal/dataset"
)

func main() {
	trajs := dataset.Generate(dataset.Config{Kind: dataset.Harbin, N: 60, Seed: 5})
	data := trajs[0]
	query := trajs[1].Sub(20, 39)
	fmt.Printf("data: %d points; query: %d points\n\n", data.Len(), query.Len())

	// train the learned measure on the fleet
	fmt.Println("training t2vec-style encoder...")
	t2v, err := simsub.TrainT2Vec(trajs, 16, 3, 9)
	if err != nil {
		panic(err)
	}

	measures := []simsub.Measure{
		simsub.DTW(),
		simsub.Frechet(),
		t2v,
		simsub.ERP(),
		simsub.EDR(0.02),
		simsub.LCSS(0.02),
	}
	for _, name := range []string{"eds", "edwp"} {
		m, err := simsub.MeasureByName(name)
		if err != nil {
			panic(err)
		}
		measures = append(measures, m)
	}

	fmt.Printf("\n%-8s  %-12s  %-10s  %-10s  %s\n", "measure", "interval", "length", "distance", "time")
	for _, m := range measures {
		start := time.Now()
		res := simsub.Exact(m).Search(data, query)
		elapsed := time.Since(start)
		fmt.Printf("%-8s  %-12v  %-10d  %-10.4f  %s\n",
			m.Name(), res.Interval, res.Interval.Len(), res.Dist, elapsed.Round(time.Microsecond))
	}

	fmt.Println("\nnote: distances are not comparable across measures; intervals are.")
}
