// Sports play retrieval (the paper's §1 motivating application): search a
// database of soccer tracking data for the segment of play whose movement
// is most similar to a query play, using the reinforcement-learning search
// (RLS) with a policy trained on the same database.
//
// Run with: go run ./examples/sportsplay
package main

import (
	"fmt"
	"time"

	"simsub"
	"simsub/internal/dataset"
)

func main() {
	// synthetic soccer tracking data: 10 Hz, mean length 170 (the Sports
	// dataset substitution described in DESIGN.md)
	plays := dataset.Generate(dataset.Config{Kind: dataset.Sports, N: 120, Seed: 7})
	fmt.Printf("database: %d plays, %d tracked points\n", len(plays), dataset.TotalPoints(plays))

	// the query play: a short attacking run extracted from a held-out play
	holdout := dataset.Generate(dataset.Config{Kind: dataset.Sports, N: 1, Seed: 99})[0]
	query := holdout.Sub(40, 69) // a 3-second movement (30 points at 10 Hz)
	fmt.Printf("query play: %d points over %.1fs\n\n", query.Len(), query.Duration())

	// train a small RLS-Skip policy on (play, clipped-query) pairs
	pairs := dataset.Pairs(plays, 60, 0, 40, 11)
	var data, queries []simsub.Trajectory
	for _, p := range pairs {
		data = append(data, p.Data)
		queries = append(queries, p.Query)
	}
	fmt.Println("training RLS-Skip policy (k=3) on 60 sampled pairs...")
	start := time.Now()
	policy, err := simsub.TrainPolicy(data, queries, simsub.DTW(), simsub.PolicyConfig{
		K: 3, UseSuffix: true, Episodes: 120, Seed: 3,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("trained in %s\n\n", time.Since(start).Round(time.Millisecond))

	// search the whole database for the top-5 most similar play segments
	db := simsub.NewDatabase(plays, true) // with R-tree MBR pruning
	rls := simsub.RL(simsub.DTW(), policy)
	start = time.Now()
	matches := db.TopK(rls, query, 5)
	fmt.Printf("top-5 similar play segments (%s, searched %d plays):\n",
		time.Since(start).Round(time.Millisecond), db.Len())
	for rank, match := range matches {
		play := db.Traj(match.TrajIndex)
		iv := match.Result.Interval
		fmt.Printf("  #%d play %3d  segment [%3d..%3d] (%.1fs)  similarity %.4f\n",
			rank+1, play.ID, iv.I, iv.J,
			play.Sub(iv.I, iv.J).Duration(), simsub.Sim(match.Result.Dist))
	}

	// contrast with whole-play search (SimTra): much worse segment fit
	whole, _ := db.Best(simsub.WholeTrajectory(simsub.DTW()), query)
	fmt.Printf("\nwhole-play baseline (SimTra): best play %d, similarity %.4f "+
		"(subtrajectory search finds %.4f)\n",
		db.Traj(whole.TrajIndex).ID, simsub.Sim(whole.Result.Dist),
		simsub.Sim(matches[0].Result.Dist))
}
