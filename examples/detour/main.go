// Detour route detection (the paper's §1 second application): given a route
// reported by passengers as a detour, find taxi subtrajectories similar to
// it — those taxis probably took the same detour. Demonstrates database
// search with R-tree pruning and compares the splitting algorithms against
// the exact search on the retrieved candidates.
//
// Run with: go run ./examples/detour
package main

import (
	"fmt"
	"time"

	"simsub"
	"simsub/internal/dataset"
)

func main() {
	// a fleet of taxi trajectories on the synthetic Porto-like road grid
	taxis := dataset.Generate(dataset.Config{Kind: dataset.Porto, N: 400, Seed: 21})
	fmt.Printf("fleet: %d taxi trajectories, %d GPS points\n",
		len(taxis), dataset.TotalPoints(taxis))

	// the reported detour: a segment of one taxi's route, as a passenger
	// would reconstruct it
	reported := taxis[137].Sub(10, 29)
	fmt.Printf("reported detour route: %d points\n\n", reported.Len())

	db := simsub.NewDatabase(taxis, true)
	pruned := len(taxis) - len(db.Candidates(reported))
	fmt.Printf("R-tree MBR pruning discards %d of %d trajectories up front\n\n",
		pruned, len(taxis))

	// fast screening with PSS, then exact confirmation of the shortlist
	start := time.Now()
	shortlist := db.TopK(simsub.PrefixSuffix(simsub.DTW()), reported, 10)
	screenTime := time.Since(start)

	fmt.Printf("screening with PSS took %s; confirming shortlist with ExactS:\n",
		screenTime.Round(time.Millisecond))
	exact := simsub.Exact(simsub.DTW())
	confirmed := 0
	for _, match := range shortlist {
		t := db.Traj(match.TrajIndex)
		res := exact.Search(t, reported)
		simVal := simsub.Sim(res.Dist)
		marker := " "
		if simVal > 0.9 { // strong detour evidence
			marker = "*"
			confirmed++
		}
		fmt.Printf(" %s taxi %3d  subroute [%3d..%3d]  similarity %.4f (PSS estimate %.4f)\n",
			marker, t.ID, res.Interval.I, res.Interval.J,
			simVal, simsub.Sim(match.Result.Dist))
	}
	fmt.Printf("\n%d taxis confirmed on the detour (marked *)\n", confirmed)
}
